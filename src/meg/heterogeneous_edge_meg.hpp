#pragma once

// Heterogeneous two-state edge-MEG: every potential edge has its *own*
// (p_e, q_e) pair.  The paper's generalized edge-MEG framework (Appendix
// A) only needs edges to evolve independently; Theorem 1's Density
// Condition is then governed by alpha = min_e p_e/(p_e + q_e) and the
// epoch length by the slowest edge, M = max_e T_mix(p_e, q_e).  This
// model exercises exactly that worst-edge structure — the ablation
// bench_a3 compares it against a homogeneous model matched to the same
// worst-edge alpha.
//
// Sampling engine: edges are bucketed by rate class (distinct (p, q)
// pairs, e.g. the two classes of two_speed_rates) and, within a class, by
// current on/off state.  Each step geometric-skips over every bucket with
// the class's envelope rate, so only the edges that actually flip are
// touched — O(flips + |E_t|) instead of one Bernoulli per pair.  When the
// sampler draws more distinct rates than kMaxExactClasses (e.g. the
// continuous uniform_alpha_rates), all edges share one class whose
// envelope is the maximum rate and candidates are thinned by an
// acceptance draw p_e / p_max (exact by superposition), which keeps the
// step output-sensitive as long as max/mean rates are comparable.
//
// Storage modes (meg/storage.hpp).  The *dense* engine above stores the
// per-pair rates, rate-class ids and on/off bytes — O(n^2) memory, the
// reference implementation.  The *sparse* engine stores only the sorted
// on-set: per-pair rates are re-derived on demand from a counter-based
// per-pair RNG (each pair's stream seed is the pair-index entry of the
// construction seed's SplitMix64 stream, so rates stay a pure function
// of the seed without materializing them), and both initialization and
// the birth scan run as batched Binomial draws over the implicit off
// population thinned by rate_e / envelope (exact by superposition, see
// meg/on_set.hpp).  The caller supplies the law's analytic envelopes and
// Theorem-1 inputs as a RateBounds (the ready-made *_bounds factories
// below compute them); memory is O(#on), so the paper's sparse regimes
// run at n >= 32768.  Sparse assigns per-pair rates from the same iid
// law through a different stream, so sparse-vs-dense equivalence is
// distributional (tests/test_sparse_storage.cpp); dense behavior is
// unchanged bit-for-bit.

#include <cstdint>
#include <functional>
#include <vector>

#include "core/dynamic_graph.hpp"
#include "markov/two_state.hpp"
#include "meg/storage.hpp"
#include "util/rng.hpp"

namespace megflood {

// Draws the (p, q) of one edge; called once per pair at construction with
// a dedicated RNG (so the assignment is a pure function of the seed).
using EdgeRateSampler = std::function<TwoStateParams(Rng&)>;

// Analytic description of a rate law's support, required by the sparse
// engine: hard envelopes for the superposition thinning (every drawn rate
// must satisfy birth <= max_birth, death <= max_death — violations are a
// logic error and throw) and the law-level Theorem-1 inputs that the
// dense engine computes from the realized draws.
struct RateBounds {
  double max_birth = 0.0;
  double max_death = 0.0;
  double min_alpha = 0.0;   // inf over the law's support of p/(p+q)
  double max_alpha = 0.0;   // sup over the law's support of p/(p+q)
  std::size_t max_mixing = 0;  // sup of T_mix over the support
};

class HeterogeneousEdgeMEG final : public DynamicGraph {
 public:
  // Dense storage (the historical ctor, unchanged behavior).
  HeterogeneousEdgeMEG(std::size_t num_nodes, EdgeRateSampler sampler,
                       std::uint64_t seed);

  // Storage-selecting ctor.  kDense ignores `bounds` beyond validation
  // and matches the 3-arg ctor bit-for-bit; kSparse requires sound
  // bounds; kAuto goes sparse above the memory threshold.
  HeterogeneousEdgeMEG(std::size_t num_nodes, EdgeRateSampler sampler,
                       std::uint64_t seed, MegStorage storage,
                       const RateBounds& bounds);

  std::size_t num_nodes() const override { return n_; }
  const Snapshot& snapshot() const override { return snapshot_; }
  void step() override;
  // Re-samples edge *states* from their stationary laws; the per-edge
  // rates themselves are part of the model identity and stay fixed.
  void reset(std::uint64_t seed) override;

  // Theorem-1 inputs for this instance.  Dense: extremes over the
  // realized per-pair draws.  Sparse: the law-level bounds supplied at
  // construction (a sup over the support, hence conservative).
  double min_alpha() const noexcept { return min_alpha_; }
  double max_alpha() const noexcept { return max_alpha_; }
  std::size_t max_mixing_time() const noexcept { return max_mixing_; }

  // The resolved storage mode (never kAuto).
  MegStorage storage() const noexcept {
    return sparse_ ? MegStorage::kSparse : MegStorage::kDense;
  }

  // Dense-mode footprint: rates (16 B) + class id + on byte + one bucket
  // key (8 B) per pair.  What kAuto weighs against the threshold.
  static std::uint64_t dense_footprint_bytes(std::size_t num_nodes) noexcept;

  // O(1) dense; sparse re-derives from the pair's counter-based stream.
  TwoStateParams edge_rates(NodeId i, NodeId j) const;

  // Current on/off state of pair {i, j} (i != j); O(1) dense,
  // O(log #on) sparse.  The equivalence suite uses this to cross-check
  // the incrementally maintained snapshot against a brute-force
  // recomputation.
  bool edge_on(NodeId i, NodeId j) const;

  // Number of rate classes the skip engine uses: the count of distinct
  // (p, q) pairs, or 1 when that count exceeds kMaxExactClasses and the
  // engine falls back to one envelope-thinned class.  Sparse mode always
  // runs the single envelope-thinned class.
  std::size_t num_rate_classes() const noexcept {
    return sparse_ ? 1 : classes_.size();
  }

  static constexpr std::size_t kMaxExactClasses = 64;

 private:
  struct RateClass {
    double env_birth = 0.0;  // envelope (max) birth rate over members
    double env_death = 0.0;
    bool exact = true;       // all members share the envelope rates
    std::vector<std::uint64_t> off;  // packed (i << 32 | j) keys
    std::vector<std::uint64_t> on;
  };

  std::size_t pair_index(NodeId i, NodeId j) const;
  void initialize();
  void initialize_sparse();
  void step_dense();
  void step_sparse();
  void rebuild_snapshot();
  // Sparse: the pair's rates, re-derived from its counter-based stream
  // (pure function of the construction seed and the pair index).
  TwoStateParams derive_rates(std::uint64_t pair_idx) const;

  std::size_t n_;
  Rng rng_;
  std::vector<TwoStateParams> rates_;   // dense: row-major upper triangle
  std::vector<std::uint8_t> class_of_;  // dense: rate-class id per pair
  std::vector<RateClass> classes_;
  std::vector<char> on_;                // dense: per-pair on/off state
  double min_alpha_ = 1.0;
  double max_alpha_ = 0.0;
  std::size_t max_mixing_ = 0;

  // Sparse mode: the on-set IS the state; rates are derived on demand.
  bool sparse_ = false;
  RateBounds bounds_;
  EdgeRateSampler sampler_;       // retained for on-demand derivation
  std::uint64_t rate_seed_ = 0;

  // Sorted packed keys of the current edge set.
  std::vector<std::uint64_t> on_keys_;

  // Step scratch (capacity reused across steps).
  struct Flip {
    std::uint32_t cls;
    std::uint64_t pos;
  };
  std::vector<Flip> deaths_;
  std::vector<Flip> births_;
  std::vector<std::uint64_t> died_;
  std::vector<std::uint64_t> born_;
  std::vector<std::uint64_t> merged_;
  std::vector<std::uint64_t> rank_scratch_;  // sparse subset draws
  std::vector<std::uint64_t> pos_scratch_;

  Snapshot snapshot_;
};

// Ready-made samplers.

// Each edge draws alpha uniform in [alpha_lo, alpha_hi] and a speed
// lambda = p + q uniform in [speed_lo, speed_hi]; then p = alpha * lambda
// and q = (1 - alpha) * lambda.  This parameterization hits the requested
// alpha exactly (both rates stay in [0, 1] by construction) and makes the
// per-edge mixing time Theta(1 / lambda).
EdgeRateSampler uniform_alpha_rates(double speed_lo, double speed_hi,
                                    double alpha_lo, double alpha_hi);

// A fraction `slow_fraction` of edges are "slow" (rates scaled down by
// `slow_factor`, same alpha): stresses the max-mixing epoch length.
EdgeRateSampler two_speed_rates(TwoStateParams base, double slow_fraction,
                                double slow_factor);

// Analytic RateBounds for the ready-made samplers (validated with the
// same argument checks as the sampler factories), for the sparse engine.
RateBounds uniform_alpha_bounds(double speed_lo, double speed_hi,
                                double alpha_lo, double alpha_hi);
RateBounds two_speed_bounds(TwoStateParams base, double slow_fraction,
                            double slow_factor);

}  // namespace megflood
