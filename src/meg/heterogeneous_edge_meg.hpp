#pragma once

// Heterogeneous two-state edge-MEG: every potential edge has its *own*
// (p_e, q_e) pair.  The paper's generalized edge-MEG framework (Appendix
// A) only needs edges to evolve independently; Theorem 1's Density
// Condition is then governed by alpha = min_e p_e/(p_e + q_e) and the
// epoch length by the slowest edge, M = max_e T_mix(p_e, q_e).  This
// model exercises exactly that worst-edge structure — the ablation
// bench_a3 compares it against a homogeneous model matched to the same
// worst-edge alpha.
//
// Sampling engine: edges are bucketed by rate class (distinct (p, q)
// pairs, e.g. the two classes of two_speed_rates) and, within a class, by
// current on/off state.  Each step geometric-skips over every bucket with
// the class's envelope rate, so only the edges that actually flip are
// touched — O(flips + |E_t|) instead of one Bernoulli per pair.  When the
// sampler draws more distinct rates than kMaxExactClasses (e.g. the
// continuous uniform_alpha_rates), all edges share one class whose
// envelope is the maximum rate and candidates are thinned by an
// acceptance draw p_e / p_max (exact by superposition), which keeps the
// step output-sensitive as long as max/mean rates are comparable.

#include <cstdint>
#include <functional>
#include <vector>

#include "core/dynamic_graph.hpp"
#include "markov/two_state.hpp"
#include "util/rng.hpp"

namespace megflood {

// Draws the (p, q) of one edge; called once per pair at construction with
// a dedicated RNG (so the assignment is a pure function of the seed).
using EdgeRateSampler = std::function<TwoStateParams(Rng&)>;

class HeterogeneousEdgeMEG final : public DynamicGraph {
 public:
  HeterogeneousEdgeMEG(std::size_t num_nodes, EdgeRateSampler sampler,
                       std::uint64_t seed);

  std::size_t num_nodes() const override { return n_; }
  const Snapshot& snapshot() const override { return snapshot_; }
  void step() override;
  // Re-samples edge *states* from their stationary laws; the per-edge
  // rates themselves are part of the model identity and stay fixed.
  void reset(std::uint64_t seed) override;

  // Theorem-1 inputs for this instance.
  double min_alpha() const noexcept { return min_alpha_; }
  double max_alpha() const noexcept { return max_alpha_; }
  std::size_t max_mixing_time() const noexcept { return max_mixing_; }

  TwoStateParams edge_rates(NodeId i, NodeId j) const;

  // Current on/off state of pair {i, j} (i != j); O(1).  The equivalence
  // suite uses this to cross-check the incrementally maintained snapshot
  // against a brute-force recomputation.
  bool edge_on(NodeId i, NodeId j) const;

  // Number of rate classes the skip engine uses: the count of distinct
  // (p, q) pairs, or 1 when that count exceeds kMaxExactClasses and the
  // engine falls back to one envelope-thinned class.
  std::size_t num_rate_classes() const noexcept { return classes_.size(); }

  static constexpr std::size_t kMaxExactClasses = 64;

 private:
  struct RateClass {
    double env_birth = 0.0;  // envelope (max) birth rate over members
    double env_death = 0.0;
    bool exact = true;       // all members share the envelope rates
    std::vector<std::uint64_t> off;  // packed (i << 32 | j) keys
    std::vector<std::uint64_t> on;
  };

  std::size_t pair_index(NodeId i, NodeId j) const;
  void initialize();
  void rebuild_snapshot();

  std::size_t n_;
  Rng rng_;
  std::vector<TwoStateParams> rates_;   // row-major upper triangle
  std::vector<std::uint8_t> class_of_;  // rate-class id per pair
  std::vector<RateClass> classes_;
  std::vector<char> on_;                // per-pair on/off state
  double min_alpha_ = 1.0;
  double max_alpha_ = 0.0;
  std::size_t max_mixing_ = 0;

  // Sorted packed keys of the current edge set.
  std::vector<std::uint64_t> on_keys_;

  // Step scratch (capacity reused across steps).
  struct Flip {
    std::uint32_t cls;
    std::uint64_t pos;
  };
  std::vector<Flip> deaths_;
  std::vector<Flip> births_;
  std::vector<std::uint64_t> died_;
  std::vector<std::uint64_t> born_;
  std::vector<std::uint64_t> merged_;

  Snapshot snapshot_;
};

// Ready-made samplers.

// Each edge draws alpha uniform in [alpha_lo, alpha_hi] and a speed
// lambda = p + q uniform in [speed_lo, speed_hi]; then p = alpha * lambda
// and q = (1 - alpha) * lambda.  This parameterization hits the requested
// alpha exactly (both rates stay in [0, 1] by construction) and makes the
// per-edge mixing time Theta(1 / lambda).
EdgeRateSampler uniform_alpha_rates(double speed_lo, double speed_hi,
                                    double alpha_lo, double alpha_hi);

// A fraction `slow_fraction` of edges are "slow" (rates scaled down by
// `slow_factor`, same alpha): stresses the max-mixing epoch length.
EdgeRateSampler two_speed_rates(TwoStateParams base, double slow_fraction,
                                double slow_factor);

}  // namespace megflood
