#pragma once

// Heterogeneous two-state edge-MEG: every potential edge has its *own*
// (p_e, q_e) pair.  The paper's generalized edge-MEG framework (Appendix
// A) only needs edges to evolve independently; Theorem 1's Density
// Condition is then governed by alpha = min_e p_e/(p_e + q_e) and the
// epoch length by the slowest edge, M = max_e T_mix(p_e, q_e).  This
// model exercises exactly that worst-edge structure — the ablation
// bench_a3 compares it against a homogeneous model matched to the same
// worst-edge alpha.

#include <cstdint>
#include <functional>
#include <vector>

#include "core/dynamic_graph.hpp"
#include "markov/two_state.hpp"
#include "util/rng.hpp"

namespace megflood {

// Draws the (p, q) of one edge; called once per pair at construction with
// a dedicated RNG (so the assignment is a pure function of the seed).
using EdgeRateSampler = std::function<TwoStateParams(Rng&)>;

class HeterogeneousEdgeMEG final : public DynamicGraph {
 public:
  HeterogeneousEdgeMEG(std::size_t num_nodes, EdgeRateSampler sampler,
                       std::uint64_t seed);

  std::size_t num_nodes() const override { return n_; }
  const Snapshot& snapshot() const override { return snapshot_; }
  void step() override;
  // Re-samples edge *states* from their stationary laws; the per-edge
  // rates themselves are part of the model identity and stay fixed.
  void reset(std::uint64_t seed) override;

  // Theorem-1 inputs for this instance.
  double min_alpha() const noexcept { return min_alpha_; }
  double max_alpha() const noexcept { return max_alpha_; }
  std::size_t max_mixing_time() const noexcept { return max_mixing_; }

  TwoStateParams edge_rates(NodeId i, NodeId j) const;

 private:
  std::size_t pair_index(NodeId i, NodeId j) const;
  void initialize();
  void rebuild_snapshot();

  std::size_t n_;
  Rng rng_;
  std::vector<TwoStateParams> rates_;  // row-major upper triangle
  std::vector<char> on_;
  double min_alpha_ = 1.0;
  double max_alpha_ = 0.0;
  std::size_t max_mixing_ = 0;
  Snapshot snapshot_;
};

// Ready-made samplers.

// Each edge draws alpha uniform in [alpha_lo, alpha_hi] and a speed
// lambda = p + q uniform in [speed_lo, speed_hi]; then p = alpha * lambda
// and q = (1 - alpha) * lambda.  This parameterization hits the requested
// alpha exactly (both rates stay in [0, 1] by construction) and makes the
// per-edge mixing time Theta(1 / lambda).
EdgeRateSampler uniform_alpha_rates(double speed_lo, double speed_hi,
                                    double alpha_lo, double alpha_hi);

// A fraction `slow_fraction` of edges are "slow" (rates scaled down by
// `slow_factor`, same alpha): stresses the max-mixing epoch length.
EdgeRateSampler two_speed_rates(TwoStateParams base, double slow_fraction,
                                double slow_factor);

}  // namespace megflood
