#pragma once

// Node-Markovian evolving graphs (paper Section 4): every node runs an
// independent copy of a Markov chain M = (S, P); nodes i, j are connected
// at time t iff C(s_i^t, s_j^t) = 1 for a fixed symmetric map C (the
// "connection graph" of M).
//
// ExplicitNodeMEG keeps the chain as a dense matrix, which enables the
// exact computation of P_NM, P_NM2 and eta (Fact 2 / Theorem 3): these
// are pure functions of the stationary distribution pi and of C.
// Mobility models with huge implicit state spaces implement DynamicGraph
// directly (src/mobility) but are node-MEGs in exactly this sense.

#include <cstdint>
#include <vector>

#include "core/dynamic_graph.hpp"
#include "markov/chain.hpp"
#include "util/rng.hpp"

namespace megflood {

// Symmetric boolean connection map over chain states.
class ConnectionMap {
 public:
  // `rows` must be square and symmetric.
  explicit ConnectionMap(std::vector<std::vector<bool>> rows);

  std::size_t num_states() const noexcept { return rows_.size(); }
  bool connected(StateId a, StateId b) const { return rows_.at(a).at(b); }

  // Gamma(x) = set of states at one hop from x (paper Appendix D).
  std::vector<StateId> gamma(StateId x) const;

  // Row x of C as a flat byte array (one byte per state): lets the
  // snapshot rebuild hoist the row lookup out of its inner loop and test
  // membership without vector<bool> bit arithmetic.
  const std::uint8_t* flat_row(StateId x) const {
    return flat_.data() + static_cast<std::size_t>(x) * rows_.size();
  }

 private:
  std::vector<std::vector<bool>> rows_;
  std::vector<std::uint8_t> flat_;  // row-major copy of rows_
};

// Exact node-MEG invariants from pi and C (Fact 2):
//   P_NM  = P(two fixed stationary nodes are connected)
//         = sum_x pi(x) * q(x)            with q(x) = pi(Gamma(x))
//   P_NM2 = P(two fixed nodes both connect to a third fixed node)
//         = sum_x pi(x) * q(x)^2
//   eta   = P_NM2 / P_NM^2.
struct NodeMegInvariants {
  double p_nm = 0.0;
  double p_nm2 = 0.0;
  double eta = 0.0;
};
NodeMegInvariants node_meg_invariants(const std::vector<double>& stationary,
                                      const ConnectionMap& connection);

class ExplicitNodeMEG final : public DynamicGraph {
 public:
  // Initial node states are drawn i.i.d. from the chain's stationary
  // distribution (the paper's stationary regime).
  ExplicitNodeMEG(std::size_t num_nodes, DenseChain chain,
                  ConnectionMap connection, std::uint64_t seed);

  std::size_t num_nodes() const override { return num_nodes_; }
  const Snapshot& snapshot() const override { return snapshot_; }
  void step() override;
  void reset(std::uint64_t seed) override;

  const DenseChain& chain() const noexcept { return chain_; }
  const ConnectionMap& connection() const noexcept { return connection_; }
  const std::vector<double>& stationary() const noexcept { return stationary_; }

  // Exact invariants of this model (Fact 2).
  NodeMegInvariants invariants() const;

  StateId node_state(NodeId i) const { return states_.at(i); }

  // Place all nodes in a specific state (worst-case start for mixing
  // studies); rebuilds the snapshot.
  void set_all_states(StateId s);

 private:
  void initialize();
  void rebuild_snapshot();

  std::size_t num_nodes_;
  DenseChain chain_;
  ConnectionMap connection_;
  Rng rng_;
  std::vector<double> stationary_;
  std::vector<StateId> states_;
  Snapshot snapshot_;
};

// Connection-map factories used by tests and experiment E4.

// C(a, b) = 1 iff a == b ("same location" semantics, as in the random
// paths model).
ConnectionMap same_state_connection(std::size_t num_states);

// C(a, b) = 1 iff |a - b| <= radius on the cycle of `num_states` states
// (a 1-D geometric proximity map).
ConnectionMap cycle_proximity_connection(std::size_t num_states,
                                         std::size_t radius);

// C(a, b) = 1 iff both states are in the "active" subset.
ConnectionMap active_subset_connection(std::size_t num_states,
                                       const std::vector<StateId>& active);

}  // namespace megflood
