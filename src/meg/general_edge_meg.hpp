#pragma once

// The *generalized* edge-MEG of Appendix A: every potential edge evolves
// by an arbitrary hidden Markov chain M = (S, P), and an arbitrary map
// chi : S -> {0, 1} decides whether the edge exists in the snapshot.
// Edges are independent, so the paper's β-independence holds with β = 1
// and Theorem 1 applies with α = P_pi(chi = 1).
//
// Sampling engine: pairs are partitioned into one bucket per hidden
// state, and each step touches only the pairs that actually transition —
// per state class s, geometric skipping over the bucket with the class's
// exit probability 1 - P(s, s) selects the movers, whose new states are
// then drawn from the conditional exit distribution.  The on-set is a
// sorted vector of packed (i, j) keys maintained incrementally (like
// TwoStateEdgeMEG), so a step costs O(|S| + transitions + |E_t|) instead
// of the historical O(n^2) per-pair resampling.  Initialization is
// batched the same way: per-class counts are drawn as sequential binomial
// splits of the multinomial Mult(pairs, pi) and scattered uniformly, so
// the stationary start costs O(minority pairs) RNG draws when one class
// dominates (the historical per-pair walk is retained as the dense-law
// fallback and as the test reference).  Per-pair state is still stored
// densely (one byte per pair), so memory remains O(n^2); in the sparse
// stationary regimes the paper targets (alpha ~ c/n with a quiescent off
// state) the *time* per step is now output-sensitive.

#include <cstdint>
#include <vector>

#include "core/dynamic_graph.hpp"
#include "markov/chain.hpp"
#include "util/rng.hpp"

namespace megflood {

class GeneralEdgeMEG final : public DynamicGraph {
 public:
  // `chi[s]` is true iff an edge in state s exists.  Initial states are
  // drawn from the chain's stationary distribution.
  GeneralEdgeMEG(std::size_t num_nodes, DenseChain chain,
                 std::vector<bool> chi, std::uint64_t seed);

  std::size_t num_nodes() const override { return n_; }
  const Snapshot& snapshot() const override { return snapshot_; }
  void step() override;
  void reset(std::uint64_t seed) override;

  const DenseChain& chain() const noexcept { return chain_; }

  // Stationary probability that an edge exists: alpha = sum_{s: chi(s)} pi_s.
  double stationary_edge_probability() const;

  // Current hidden state of pair {i, j} (i != j).  The equivalence suite
  // uses this to cross-check the incrementally maintained snapshot
  // against a brute-force recomputation from the per-pair states.
  StateId pair_state(NodeId i, NodeId j) const;

 private:
  void initialize();
  // Batched multinomial initializer (default); returns true when it took
  // the majority-fill + scatter path (init_majority_ / init_positions_ /
  // states_ then describe the configuration), false when it fell back to
  // the per-pair walk for a dense state law.
  bool sample_initial_states();
  void sample_initial_states_per_pair();  // historical reference / fallback
  void fill_buckets_from_scatter();
  void rebuild_snapshot();
  StateId sample_exit_target(StateId from);

  std::size_t n_;
  DenseChain chain_;
  std::vector<bool> chi_;
  Rng rng_;
  std::vector<double> stationary_;
  std::vector<std::uint8_t> states_;  // one per pair, row-major upper triangle

  // Per-state exit tables: exit_prob_[s] = sum of the positive
  // off-diagonal entries of row s (the probability of leaving s this
  // step); exit_cum_[s][k] is the running sum over those entries and
  // exit_target_[s][k] the corresponding destination state.
  std::vector<double> exit_prob_;
  std::vector<std::vector<double>> exit_cum_;
  std::vector<std::vector<StateId>> exit_target_;

  // buckets_[s] holds the packed (i << 32 | j) keys of the pairs
  // currently in state s.  Element order mutates via swap-removes but is
  // a pure function of the seed, so runs stay reproducible.
  std::vector<std::vector<std::uint64_t>> buckets_;

  // Sorted packed keys of the pairs whose state maps to "edge exists".
  std::vector<std::uint64_t> on_;

  // Step scratch (capacity reused across steps).
  struct Move {
    std::uint64_t pos;
    StateId from;
    StateId to;
  };
  std::vector<Move> moves_;
  std::vector<std::uint64_t> died_;
  std::vector<std::uint64_t> born_;
  std::vector<std::uint64_t> merged_;

  // Initialization scratch (batched stationary sampling).  Both vectors
  // are minority-sized; the O(pairs) rejection bitmap lives on the stack
  // of sample_initial_states() so a long-lived model does not carry it.
  std::vector<std::uint8_t> init_values_;
  std::vector<std::uint64_t> init_positions_;
  StateId init_majority_ = 0;

  Snapshot snapshot_;
};

// Ready-made hidden chains for experiments and tests.

// Three-state "bursty link": off <-> warming -> on -> off.  Models links
// with a setup delay; exists only in state 2 (on).
struct BurstyLink {
  DenseChain chain;
  std::vector<bool> chi;
};
BurstyLink make_bursty_link(double wake_rate, double ready_rate, double drop_rate);

// Cyclic k-state chain that advances with probability `advance` per step
// and is "on" in exactly `on_states` of the k states; a duty-cycled link.
BurstyLink make_duty_cycle_link(std::size_t period, std::size_t on_states,
                                double advance);

// Four-state link chain in the spirit of the refined edge model of
// Becchetti et al. [5] (the paper's reference for "a more refined model
// with four states"): the off and on macro-states each split into a
// sticky and a volatile sub-state, which produces bursty contact patterns
// (heavy-tailed-ish inter-contact times) that the plain two-state chain
// cannot express.
//   states: 0 = off-sticky, 1 = off-volatile, 2 = on-volatile,
//           3 = on-sticky;  chi = {0, 0, 1, 1}.
struct FourStateLinkParams {
  double wake = 0.01;        // off-sticky -> off-volatile
  double connect = 0.4;      // off-volatile -> on-volatile
  double calm_off = 0.05;    // off-volatile -> off-sticky
  double drop = 0.4;         // on-volatile -> off-volatile
  double stabilize = 0.05;   // on-volatile -> on-sticky
  double destabilize = 0.02; // on-sticky -> on-volatile
};
BurstyLink make_four_state_link(const FourStateLinkParams& params);

}  // namespace megflood
