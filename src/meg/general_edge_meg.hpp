#pragma once

// The *generalized* edge-MEG of Appendix A: every potential edge evolves
// by an arbitrary hidden Markov chain M = (S, P), and an arbitrary map
// chi : S -> {0, 1} decides whether the edge exists in the snapshot.
// Edges are independent, so the paper's β-independence holds with β = 1
// and Theorem 1 applies with α = P_pi(chi = 1).
//
// Sampling engine: pairs are partitioned into one bucket per hidden
// state, and each step touches only the pairs that actually transition —
// per state class s, geometric skipping over the bucket with the class's
// exit probability 1 - P(s, s) selects the movers, whose new states are
// then drawn from the conditional exit distribution.  The on-set is a
// sorted vector of packed (i, j) keys maintained incrementally (like
// TwoStateEdgeMEG), so a step costs O(|S| + transitions + |E_t|) instead
// of the historical O(n^2) per-pair resampling.  Initialization is
// batched the same way: per-class counts are drawn as sequential binomial
// splits of the multinomial Mult(pairs, pi) and scattered uniformly, so
// the stationary start costs O(minority pairs) RNG draws when one class
// dominates (the historical per-pair walk is retained as the dense-law
// fallback and as the test reference).
//
// Storage modes (meg/storage.hpp).  The *dense* engine keeps one state
// byte plus one bucket key per pair — O(n^2) bytes, the reference
// implementation.  The *sparse* engine stores only the minority-state
// map: a sorted packed-key vector (parallel per-entry state bytes) of
// the pairs whose hidden state differs from the stationary mode; the
// majority population is implicit.  Per step, minority movers are found
// by geometric-skipping the map at the largest minority exit probability
// (envelope thinning, exact by superposition) and majority movers by a
// batched Binomial draw over the implicit complement population plus a
// uniform distinct placement (meg/on_set.hpp) — the same iid per-pair
// transition law as dense, so the two modes are distributionally
// equivalent (and bit-identical at t = 0, where they share the batched
// initializer's stream).  Memory is O(#minority + #on), which in the
// paper's sparse stationary regimes (alpha ~ c/n, quiescent off state)
// is O(n) — the engine steps at n >= 32768 where dense cannot allocate.
// Sparse requires a dominant stationary state (pi_max >= 1/2) that chi
// maps to "off"; explicit kSparse on a non-qualifying chain is a hard
// error, kAuto falls back to dense.

#include <cstdint>
#include <vector>

#include "core/dynamic_graph.hpp"
#include "markov/chain.hpp"
#include "meg/storage.hpp"
#include "util/rng.hpp"

namespace megflood {

class GeneralEdgeMEG final : public DynamicGraph {
 public:
  // `chi[s]` is true iff an edge in state s exists.  Initial states are
  // drawn from the chain's stationary distribution.
  GeneralEdgeMEG(std::size_t num_nodes, DenseChain chain,
                 std::vector<bool> chi, std::uint64_t seed,
                 MegStorage storage = MegStorage::kAuto);

  std::size_t num_nodes() const override { return n_; }
  const Snapshot& snapshot() const override { return snapshot_; }
  void step() override;
  void reset(std::uint64_t seed) override;

  const DenseChain& chain() const noexcept { return chain_; }

  // The resolved storage mode (never kAuto).
  MegStorage storage() const noexcept {
    return sparse_ ? MegStorage::kSparse : MegStorage::kDense;
  }

  // Dense-mode footprint this instance would need: one state byte plus
  // one 8-byte bucket key per pair.  What kAuto weighs against the
  // threshold in meg/storage.hpp.
  static std::uint64_t dense_footprint_bytes(std::size_t num_nodes) noexcept;

  // Sparse mode: number of pairs currently off the majority state (the
  // minority-map size).  Dense mode reports the same quantity (counted
  // from the buckets) so tests can compare the representations.
  std::uint64_t minority_count() const;

  // Stationary probability that an edge exists: alpha = sum_{s: chi(s)} pi_s.
  double stationary_edge_probability() const;

  // Current hidden state of pair {i, j} (i != j).  The equivalence suite
  // uses this to cross-check the incrementally maintained snapshot
  // against a brute-force recomputation from the per-pair states.  O(1)
  // dense, O(log #minority) sparse.
  StateId pair_state(NodeId i, NodeId j) const;

 private:
  void initialize();
  void initialize_sparse();
  // Batched multinomial initializer (default); returns true when it took
  // the majority-fill + scatter path (init_majority_ / init_positions_ /
  // states_ then describe the configuration), false when it fell back to
  // the per-pair walk for a dense state law.
  bool sample_initial_states();
  void sample_initial_states_per_pair();  // historical reference / fallback
  void fill_buckets_from_scatter();
  // Shared pieces of the batched stationary draw (identical RNG stream in
  // both storage modes): sequential binomial splits of Mult(pairs, pi),
  // and the uniformly shuffled minority value multiset.
  std::vector<std::uint64_t> sample_class_counts(std::uint64_t pairs);
  void build_shuffled_minority_values(
      const std::vector<std::uint64_t>& class_count, StateId majority,
      std::uint64_t minority);
  void step_dense();
  void step_sparse();
  void rebuild_snapshot();
  StateId sample_exit_target(StateId from);

  std::size_t n_;
  DenseChain chain_;
  std::vector<bool> chi_;
  Rng rng_;
  std::vector<double> stationary_;
  std::vector<std::uint8_t> states_;  // dense: one per pair, row-major triangle

  // Per-state exit tables: exit_prob_[s] = sum of the positive
  // off-diagonal entries of row s (the probability of leaving s this
  // step); exit_cum_[s][k] is the running sum over those entries and
  // exit_target_[s][k] the corresponding destination state.
  std::vector<double> exit_prob_;
  std::vector<std::vector<double>> exit_cum_;
  std::vector<std::vector<StateId>> exit_target_;

  // Dense mode: buckets_[s] holds the packed (i << 32 | j) keys of the
  // pairs currently in state s.  Element order mutates via swap-removes
  // but is a pure function of the seed, so runs stay reproducible.
  std::vector<std::vector<std::uint64_t>> buckets_;

  // Sorted packed keys of the pairs whose state maps to "edge exists".
  std::vector<std::uint64_t> on_;

  // Sparse mode: the minority-state map — sorted packed keys of the
  // pairs NOT in the majority state, with a parallel per-entry state
  // byte.  Every other pair is implicitly in majority_state_.
  bool sparse_ = false;
  StateId majority_state_ = 0;
  double minority_exit_envelope_ = 0.0;  // max exit prob over minority states
  std::vector<std::uint64_t> minority_keys_;
  std::vector<std::uint8_t> minority_states_;

  // Step scratch (capacity reused across steps).
  struct Move {
    std::uint64_t pos;
    StateId from;
    StateId to;
  };
  std::vector<Move> moves_;
  std::vector<std::uint64_t> died_;
  std::vector<std::uint64_t> born_;
  std::vector<std::uint64_t> merged_;
  // Sparse-step scratch: dropped minority positions, majority-mover
  // insertions, subset ranks, and the minority-map merge buffers.
  std::vector<std::uint64_t> removed_pos_;
  std::vector<std::uint64_t> inserted_keys_;
  std::vector<std::uint8_t> inserted_states_;
  std::vector<std::uint64_t> rank_scratch_;
  std::vector<std::uint64_t> key_scratch_;
  std::vector<std::uint8_t> state_scratch_;

  // Initialization scratch (batched stationary sampling).  Both vectors
  // are minority-sized; the subset draw's dedup buffer (bitmap or hash
  // set, meg/on_set.hpp) is transient, so nothing larger outlives init.
  std::vector<std::uint8_t> init_values_;
  std::vector<std::uint64_t> init_positions_;
  StateId init_majority_ = 0;

  Snapshot snapshot_;
};

// Ready-made hidden chains for experiments and tests.

// Three-state "bursty link": off <-> warming -> on -> off.  Models links
// with a setup delay; exists only in state 2 (on).
struct BurstyLink {
  DenseChain chain;
  std::vector<bool> chi;
};
BurstyLink make_bursty_link(double wake_rate, double ready_rate, double drop_rate);

// Cyclic k-state chain that advances with probability `advance` per step
// and is "on" in exactly `on_states` of the k states; a duty-cycled link.
BurstyLink make_duty_cycle_link(std::size_t period, std::size_t on_states,
                                double advance);

// Four-state link chain in the spirit of the refined edge model of
// Becchetti et al. [5] (the paper's reference for "a more refined model
// with four states"): the off and on macro-states each split into a
// sticky and a volatile sub-state, which produces bursty contact patterns
// (heavy-tailed-ish inter-contact times) that the plain two-state chain
// cannot express.
//   states: 0 = off-sticky, 1 = off-volatile, 2 = on-volatile,
//           3 = on-sticky;  chi = {0, 0, 1, 1}.
struct FourStateLinkParams {
  double wake = 0.01;        // off-sticky -> off-volatile
  double connect = 0.4;      // off-volatile -> on-volatile
  double calm_off = 0.05;    // off-volatile -> off-sticky
  double drop = 0.4;         // on-volatile -> off-volatile
  double stabilize = 0.05;   // on-volatile -> on-sticky
  double destabilize = 0.02; // on-sticky -> on-volatile
};
BurstyLink make_four_state_link(const FourStateLinkParams& params);

}  // namespace megflood
