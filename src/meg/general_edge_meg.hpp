#pragma once

// The *generalized* edge-MEG of Appendix A: every potential edge evolves
// by an arbitrary hidden Markov chain M = (S, P), and an arbitrary map
// chi : S -> {0, 1} decides whether the edge exists in the snapshot.
// Edges are independent, so the paper's β-independence holds with β = 1
// and Theorem 1 applies with α = P_pi(chi = 1).
//
// Per-edge state is stored densely (one byte per pair), so this variant
// targets moderate n (<= ~2000 nodes, i.e. <= ~2M pairs).

#include <cstdint>
#include <vector>

#include "core/dynamic_graph.hpp"
#include "markov/chain.hpp"
#include "util/rng.hpp"

namespace megflood {

class GeneralEdgeMEG final : public DynamicGraph {
 public:
  // `chi[s]` is true iff an edge in state s exists.  Initial states are
  // drawn from the chain's stationary distribution.
  GeneralEdgeMEG(std::size_t num_nodes, DenseChain chain,
                 std::vector<bool> chi, std::uint64_t seed);

  std::size_t num_nodes() const override { return n_; }
  const Snapshot& snapshot() const override { return snapshot_; }
  void step() override;
  void reset(std::uint64_t seed) override;

  const DenseChain& chain() const noexcept { return chain_; }

  // Stationary probability that an edge exists: alpha = sum_{s: chi(s)} pi_s.
  double stationary_edge_probability() const;

 private:
  void initialize();
  void rebuild_snapshot();

  std::size_t n_;
  DenseChain chain_;
  std::vector<bool> chi_;
  Rng rng_;
  std::vector<double> stationary_;
  std::vector<std::uint8_t> states_;  // one per pair, row-major upper triangle
  Snapshot snapshot_;
};

// Ready-made hidden chains for experiments and tests.

// Three-state "bursty link": off <-> warming -> on -> off.  Models links
// with a setup delay; exists only in state 2 (on).
struct BurstyLink {
  DenseChain chain;
  std::vector<bool> chi;
};
BurstyLink make_bursty_link(double wake_rate, double ready_rate, double drop_rate);

// Cyclic k-state chain that advances with probability `advance` per step
// and is "on" in exactly `on_states` of the k states; a duty-cycled link.
BurstyLink make_duty_cycle_link(std::size_t period, std::size_t on_states,
                                double advance);

// Four-state link chain in the spirit of the refined edge model of
// Becchetti et al. [5] (the paper's reference for "a more refined model
// with four states"): the off and on macro-states each split into a
// sticky and a volatile sub-state, which produces bursty contact patterns
// (heavy-tailed-ish inter-contact times) that the plain two-state chain
// cannot express.
//   states: 0 = off-sticky, 1 = off-volatile, 2 = on-volatile,
//           3 = on-sticky;  chi = {0, 0, 1, 1}.
struct FourStateLinkParams {
  double wake = 0.01;        // off-sticky -> off-volatile
  double connect = 0.4;      // off-volatile -> on-volatile
  double calm_off = 0.05;    // off-volatile -> off-sticky
  double drop = 0.4;         // on-volatile -> off-volatile
  double stabilize = 0.05;   // on-volatile -> on-sticky
  double destabilize = 0.02; // on-sticky -> on-volatile
};
BurstyLink make_four_state_link(const FourStateLinkParams& params);

}  // namespace megflood
