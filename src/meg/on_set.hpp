#pragma once

// Shared incremental maintenance of a sorted on-edge set (packed pair
// keys, see meg/pair_index.hpp) for the geometric-skip edge-MEG engines:
// per step only the flipped edges are known, and the set is updated with
// one merge pass instead of an O(n^2) rebuild.
//
// Also the shared machinery of the *sparse* storage mode (minority-state
// maps): batched subset sampling over an implicit complement population
// and the sorted-merge delta that keeps a minority map (parallel key /
// state vectors) ordered without ever materializing the majority.

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "meg/pair_index.hpp"
#include "util/rng.hpp"

namespace megflood {

// Applies on := (on \ died) ∪ born in a single linear pass.
// Preconditions: `on` is sorted; every key in `died` is present in `on`;
// no key in `born` is present in `on`.  `died` and `born` may arrive in
// any order (they are sorted in place); `scratch` is reused capacity.
inline void apply_on_set_delta(std::vector<std::uint64_t>& on,
                               std::vector<std::uint64_t>& died,
                               std::vector<std::uint64_t>& born,
                               std::vector<std::uint64_t>& scratch) {
  if (died.empty() && born.empty()) return;
  std::sort(died.begin(), died.end());
  std::sort(born.begin(), born.end());
  scratch.clear();
  scratch.reserve(on.size() - died.size() + born.size());
  auto d = died.begin();
  auto b = born.begin();
  for (const std::uint64_t key : on) {
    if (d != died.end() && *d == key) {
      ++d;
      continue;
    }
    while (b != born.end() && *b < key) scratch.push_back(*b++);
    scratch.push_back(key);
  }
  scratch.insert(scratch.end(), b, born.end());
  std::swap(on, scratch);
}

// Draws a uniform random k-subset of [0, bound) into `out`, sorted
// ascending, by rejection against the already-drawn set.  The rejection
// stream depends only on set *membership*, so the dedup structure is a
// pure space/time choice: a flat bound-sized bitmap when the subset is a
// meaningful fraction of the range (the dense initializers — one byte
// per slot beats ~40 B per hash node), a transient hash set when it is
// vanishingly small (the sparse engines, where an O(bound) buffer is the
// very allocation being avoided).  Both produce the identical draw
// sequence, so the sampled subset is bit-for-bit the same either way.
// Expected < 2 draws per slot while k <= bound / 2.  Precondition:
// k <= bound.
inline void sample_distinct_positions(Rng& rng, std::uint64_t k,
                                      std::uint64_t bound,
                                      std::vector<std::uint64_t>& out) {
  assert(k <= bound);
  out.clear();
  if (k == 0) return;
  out.reserve(k);
  if (k >= bound / 32) {
    std::vector<std::uint8_t> taken(bound, 0);
    for (std::uint64_t drawn = 0; drawn < k; ++drawn) {
      std::uint64_t pos = rng.uniform_int(bound);
      while (taken[pos]) pos = rng.uniform_int(bound);
      taken[pos] = 1;
      out.push_back(pos);
    }
  } else {
    std::unordered_set<std::uint64_t> taken;
    taken.reserve(static_cast<std::size_t>(2 * k));
    for (std::uint64_t drawn = 0; drawn < k; ++drawn) {
      std::uint64_t pos = rng.uniform_int(bound);
      while (!taken.insert(pos).second) pos = rng.uniform_int(bound);
      out.push_back(pos);
    }
  }
  std::sort(out.begin(), out.end());
}

// Selects an iid Bernoulli(p) subset of the *complement* of `minority`
// (sorted packed keys) within the n-node pair population and calls
// visit(key) in ascending key order.  The implicit-majority sampling
// primitive of the sparse engines: a Binomial(count, p) size plus a
// uniform distinct placement is exactly an iid per-pair selection, so the
// law matches geometric-skipping a dense majority bucket — without ever
// materializing it.  `rank_scratch` is reused capacity.
//
// The rank -> pair-index translation is a single two-pointer merge: the
// r-th complement element is r + j where j counts the minority entries
// below it (minority keys sort like linear pair indices, so the walk is
// one pass over the map).
template <typename Visit>
inline void bernoulli_complement_select(Rng& rng, std::uint64_t n,
                                        const std::vector<std::uint64_t>& minority,
                                        double p,
                                        std::vector<std::uint64_t>& rank_scratch,
                                        Visit&& visit) {
  const std::uint64_t total = pair_count(n);
  assert(minority.size() <= total);
  const std::uint64_t count = total - minority.size();
  if (count == 0 || p <= 0.0) return;
  const std::uint64_t k = rng.binomial(count, p);
  if (k == 0) return;
  sample_distinct_positions(rng, k, count, rank_scratch);
  std::size_t j = 0;
  std::uint64_t next_minority_index =
      j < minority.size() ? pair_index_from_key(n, minority[j]) : 0;
  for (const std::uint64_t rank : rank_scratch) {
    while (j < minority.size() && next_minority_index <= rank + j) {
      ++j;
      if (j < minority.size()) {
        next_minority_index = pair_index_from_key(n, minority[j]);
      }
    }
    visit(pair_key_from_index(n, rank + j));
  }
}

// Applies one step's delta to a minority map (sorted `keys` with a
// parallel `states` vector): drops the entries at `removed_positions`
// (sorted, positions into the pre-delta map) and merges in the new
// `inserted_keys` / `inserted_states` (sorted by key, disjoint from the
// surviving keys).  In-place state changes are the caller's business (a
// state overwrite does not move an entry).  One linear pass, reused
// scratch capacity — the minority-map analogue of apply_on_set_delta.
inline void apply_minority_delta(std::vector<std::uint64_t>& keys,
                                 std::vector<std::uint8_t>& states,
                                 const std::vector<std::uint64_t>& removed_positions,
                                 const std::vector<std::uint64_t>& inserted_keys,
                                 const std::vector<std::uint8_t>& inserted_states,
                                 std::vector<std::uint64_t>& key_scratch,
                                 std::vector<std::uint8_t>& state_scratch) {
  assert(inserted_keys.size() == inserted_states.size());
  if (removed_positions.empty() && inserted_keys.empty()) return;
  key_scratch.clear();
  state_scratch.clear();
  const std::size_t final_size =
      keys.size() - removed_positions.size() + inserted_keys.size();
  key_scratch.reserve(final_size);
  state_scratch.reserve(final_size);
  std::size_t r = 0;
  std::size_t ins = 0;
  for (std::size_t pos = 0; pos < keys.size(); ++pos) {
    if (r < removed_positions.size() && removed_positions[r] == pos) {
      ++r;
      continue;
    }
    const std::uint64_t key = keys[pos];
    while (ins < inserted_keys.size() && inserted_keys[ins] < key) {
      key_scratch.push_back(inserted_keys[ins]);
      state_scratch.push_back(inserted_states[ins]);
      ++ins;
    }
    key_scratch.push_back(key);
    state_scratch.push_back(states[pos]);
  }
  for (; ins < inserted_keys.size(); ++ins) {
    key_scratch.push_back(inserted_keys[ins]);
    state_scratch.push_back(inserted_states[ins]);
  }
  assert(key_scratch.size() == final_size);
  std::swap(keys, key_scratch);
  std::swap(states, state_scratch);
}

}  // namespace megflood
