#pragma once

// Shared incremental maintenance of a sorted on-edge set (packed pair
// keys, see meg/pair_index.hpp) for the geometric-skip edge-MEG engines:
// per step only the flipped edges are known, and the set is updated with
// one merge pass instead of an O(n^2) rebuild.

#include <algorithm>
#include <cstdint>
#include <vector>

namespace megflood {

// Applies on := (on \ died) ∪ born in a single linear pass.
// Preconditions: `on` is sorted; every key in `died` is present in `on`;
// no key in `born` is present in `on`.  `died` and `born` may arrive in
// any order (they are sorted in place); `scratch` is reused capacity.
inline void apply_on_set_delta(std::vector<std::uint64_t>& on,
                               std::vector<std::uint64_t>& died,
                               std::vector<std::uint64_t>& born,
                               std::vector<std::uint64_t>& scratch) {
  if (died.empty() && born.empty()) return;
  std::sort(died.begin(), died.end());
  std::sort(born.begin(), born.end());
  scratch.clear();
  scratch.reserve(on.size() - died.size() + born.size());
  auto d = died.begin();
  auto b = born.begin();
  for (const std::uint64_t key : on) {
    if (d != died.end() && *d == key) {
      ++d;
      continue;
    }
    while (b != born.end() && *b < key) scratch.push_back(*b++);
    scratch.push_back(key);
  }
  scratch.insert(scratch.end(), b, born.end());
  std::swap(on, scratch);
}

}  // namespace megflood
