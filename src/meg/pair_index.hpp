#pragma once

// Linear indexing of the n(n-1)/2 unordered node pairs: row-major
// enumeration of the strictly-upper-triangular matrix, row i spanning
// indices [row_start(i), row_start(i) + (n - 1 - i)).
//
// The inversion (index -> pair) is exact in pure integer arithmetic: the
// discriminant (2n-1)^2 - 8*index exceeds 64 bits for n near 2^32, and a
// double-precision sqrt of it loses integer precision past 2^53 — the
// float seed is only used to initialize the integer square root, which is
// then corrected exactly in unsigned __int128.

#include <cmath>
#include <cstdint>
#include <utility>

namespace megflood {

// Total number of unordered pairs over n nodes.
inline constexpr std::uint64_t pair_count(std::uint64_t n) noexcept {
  return n * (n - 1) / 2;
}

// Packed-key representation of a pair (i < j): (i << 32) | j.  Keys sort
// in the same order as the row-major linear pair index, so sorted key
// vectors and sorted index vectors enumerate pairs identically.  Shared
// by every edge-MEG's on-set / bucket storage.
inline constexpr std::uint64_t pack_pair(std::uint32_t i,
                                         std::uint32_t j) noexcept {
  return (static_cast<std::uint64_t>(i) << 32) | j;
}

inline constexpr std::uint32_t pair_key_i(std::uint64_t key) noexcept {
  return static_cast<std::uint32_t>(key >> 32);
}

inline constexpr std::uint32_t pair_key_j(std::uint64_t key) noexcept {
  return static_cast<std::uint32_t>(key & 0xffffffffu);
}

// Index of the first pair in row i (pairs (i, j) with j > i).
inline constexpr std::uint64_t pair_row_start(std::uint64_t n,
                                              std::uint64_t i) noexcept {
  return i * (2 * n - i - 1) / 2;
}

// Linear index of pair (i, j), i < j < n.
inline constexpr std::uint64_t pair_index_of(std::uint64_t n, std::uint64_t i,
                                             std::uint64_t j) noexcept {
  return pair_row_start(n, i) + (j - i - 1);
}

// Exact floor(sqrt(x)) for 128-bit x.
inline std::uint64_t isqrt_u128(unsigned __int128 x) noexcept {
  if (x == 0) return 0;
  // Seed from the double sqrt (good to ~53 bits), then correct exactly.
  auto r = static_cast<std::uint64_t>(std::sqrt(static_cast<double>(x)));
  while (r > 0 && static_cast<unsigned __int128>(r) * r > x) --r;
  while (static_cast<unsigned __int128>(r + 1) * (r + 1) <= x) ++r;
  return r;
}

// Inverse of pair_index_of: the pair (i, j) with pair_index_of(n, i, j) ==
// index.  Precondition: index < pair_count(n), n >= 2.
inline std::pair<std::uint32_t, std::uint32_t> pair_from_index(
    std::uint64_t n, std::uint64_t index) noexcept {
  // Largest i with row_start(i) <= index solves
  // i = floor(((2n-1) - sqrt((2n-1)^2 - 8*index)) / 2).
  const std::uint64_t a = 2 * n - 1;
  const unsigned __int128 disc =
      static_cast<unsigned __int128>(a) * a -
      static_cast<unsigned __int128>(8) * index;  // >= 1 for valid index
  const std::uint64_t s = isqrt_u128(disc);
  std::uint64_t i = (a - s) / 2;
  // floor(sqrt) rounds the row down by at most one; settle exactly.
  while (i + 1 < n && pair_row_start(n, i + 1) <= index) ++i;
  while (i > 0 && pair_row_start(n, i) > index) --i;
  const std::uint64_t j = i + 1 + (index - pair_row_start(n, i));
  return {static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(j)};
}

// Converters between the two interchangeable pair representations.  Both
// orders agree (keys sort like indices), so any sorted vector can hold
// either; the packed key is the storage format of the on-sets and
// minority maps, the linear index the sampling format of the implicit
// (complement) populations.
inline std::uint64_t pair_key_from_index(std::uint64_t n,
                                         std::uint64_t index) noexcept {
  const auto [i, j] = pair_from_index(n, index);
  return pack_pair(i, j);
}

inline std::uint64_t pair_index_from_key(std::uint64_t n,
                                         std::uint64_t key) noexcept {
  return pair_index_of(n, pair_key_i(key), pair_key_j(key));
}

}  // namespace megflood
