#include "meg/edge_meg.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "meg/pair_index.hpp"

namespace megflood {

TwoStateEdgeMEG::TwoStateEdgeMEG(std::size_t num_nodes, TwoStateParams params,
                                 std::uint64_t seed, EdgeMegInit init)
    : n_(num_nodes),
      chain_(params),
      init_(init),
      rng_(seed),
      total_pairs_(pair_count(num_nodes)) {
  if (num_nodes < 2) {
    throw std::invalid_argument("TwoStateEdgeMEG: need at least 2 nodes");
  }
  snapshot_.reset(n_);
  initialize();
}

void TwoStateEdgeMEG::initialize() {
  on_.clear();
  switch (init_) {
    case EdgeMegInit::kAllOff:
      break;
    case EdgeMegInit::kAllOn:
      on_.reserve(total_pairs_);
      for (std::uint32_t i = 0; i + 1 < n_; ++i) {
        for (std::uint32_t j = i + 1; j < n_; ++j) on_.push_back(pack_pair(i, j));
      }
      break;
    case EdgeMegInit::kStationary: {
      // Geometric skipping over the pair enumeration; indices arrive
      // strictly increasing, so on_ is sorted by construction.
      geometric_select(rng_, total_pairs_, chain_.stationary_on(),
                       [&](std::uint64_t e) {
                         on_.push_back(pair_key_from_index(n_, e));
                       });
      break;
    }
  }
  rebuild_snapshot();
}

void TwoStateEdgeMEG::rebuild_snapshot() {
  snapshot_.clear();
  for (std::uint64_t key : on_) {
    snapshot_.add_edge(pair_key_i(key), pair_key_j(key));
  }
}

void TwoStateEdgeMEG::step() {
  const double p = chain_.birth_rate();
  const double q = chain_.death_rate();

  // Deaths: each edge that is on at the start of the step dies with
  // probability q.  The on-set is walked in sorted order (it is stored
  // sorted), so the RNG consumption sequence is a pure function of the
  // seed and the state; survivors are compacted in place (stable, hence
  // still sorted) and the dead collected so births below can be decided
  // against the pre-step state (a pair that dies this step was on, hence
  // cannot also be born this step).
  killed_.clear();
  if (q > 0.0) {
    std::size_t w = 0;
    for (std::size_t r = 0; r < on_.size(); ++r) {
      if (rng_.bernoulli(q)) {
        killed_.push_back(on_[r]);
      } else {
        on_[w++] = on_[r];
      }
    }
    on_.resize(w);
  }

  // Births: mark every pair with probability p via geometric skipping over
  // the linear pair enumeration.  A mark on a surviving on-pair is a no-op
  // (dropped during the merge); a mark on a killed pair is discarded, which
  // restricts births to exactly the pre-step off edges.
  if (p > 0.0) {
    born_.clear();
    geometric_select(rng_, total_pairs_, p, [&](std::uint64_t e) {
      const std::uint64_t key = pair_key_from_index(n_, e);
      if (!std::binary_search(killed_.begin(), killed_.end(), key)) {
        born_.push_back(key);
      }
    });
    if (!born_.empty()) {
      // Sorted-merge union of survivors and births (both ascending).
      merged_.clear();
      merged_.reserve(on_.size() + born_.size());
      std::set_union(on_.begin(), on_.end(), born_.begin(), born_.end(),
                     std::back_inserter(merged_));
      std::swap(on_, merged_);
    }
  }

  rebuild_snapshot();
  advance_clock();
}

void TwoStateEdgeMEG::reset(std::uint64_t seed) {
  rng_.reseed(seed);
  reset_clock();
  initialize();
}

}  // namespace megflood
