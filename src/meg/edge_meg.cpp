#include "meg/edge_meg.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace megflood {

TwoStateEdgeMEG::TwoStateEdgeMEG(std::size_t num_nodes, TwoStateParams params,
                                 std::uint64_t seed, EdgeMegInit init)
    : n_(num_nodes),
      chain_(params),
      init_(init),
      rng_(seed),
      total_pairs_(static_cast<std::uint64_t>(num_nodes) * (num_nodes - 1) / 2) {
  if (num_nodes < 2) {
    throw std::invalid_argument("TwoStateEdgeMEG: need at least 2 nodes");
  }
  snapshot_.reset(n_);
  initialize();
}

std::pair<NodeId, NodeId> TwoStateEdgeMEG::pair_of(std::uint64_t index) const {
  assert(index < total_pairs_);
  // Row-major enumeration of the strictly-upper-triangular pair matrix:
  // row i spans indices [offset_i, offset_i + (n-1-i)).  Invert with the
  // quadratic formula on the cumulative row lengths.
  const double nd = static_cast<double>(n_);
  const double idx = static_cast<double>(index);
  // Solve i from: i*(2n - i - 1)/2 <= index.
  double guess = std::floor(
      ((2.0 * nd - 1.0) - std::sqrt((2.0 * nd - 1.0) * (2.0 * nd - 1.0) -
                                    8.0 * idx)) /
      2.0);
  auto i = static_cast<std::uint64_t>(std::max(0.0, guess));
  auto row_start = [&](std::uint64_t r) {
    return r * (2 * n_ - r - 1) / 2;
  };
  while (i + 1 < n_ && row_start(i + 1) <= index) ++i;
  while (i > 0 && row_start(i) > index) --i;
  const std::uint64_t j = i + 1 + (index - row_start(i));
  assert(j < n_);
  return {static_cast<NodeId>(i), static_cast<NodeId>(j)};
}

void TwoStateEdgeMEG::initialize() {
  on_.clear();
  switch (init_) {
    case EdgeMegInit::kAllOff:
      break;
    case EdgeMegInit::kAllOn:
      for (std::uint64_t e = 0; e < total_pairs_; ++e) on_.insert(e);
      break;
    case EdgeMegInit::kStationary: {
      const double pi = chain_.stationary_on();
      if (pi > 0.0) {
        // Geometric skipping over the pair enumeration.
        std::uint64_t e = rng_.geometric(pi);
        while (e < total_pairs_) {
          on_.insert(e);
          e += 1 + rng_.geometric(pi);
        }
      }
      break;
    }
  }
  rebuild_snapshot();
}

void TwoStateEdgeMEG::rebuild_snapshot() {
  snapshot_.clear();
  // Sorted order keeps adjacency lists canonical, so downstream consumers
  // that sample from neighbor lists (e.g. k-push) stay reproducible.
  std::vector<std::uint64_t> ordered(on_.begin(), on_.end());
  std::sort(ordered.begin(), ordered.end());
  for (std::uint64_t e : ordered) {
    const auto [i, j] = pair_of(e);
    snapshot_.add_edge(i, j);
  }
}

void TwoStateEdgeMEG::step() {
  const double p = chain_.birth_rate();
  const double q = chain_.death_rate();

  // Deaths: each edge that is on at the start of the step dies with
  // probability q.  Deaths are collected first so that births below can be
  // decided against the pre-step state (a pair that dies this step was on,
  // hence cannot also be born this step).  The on-set is visited in sorted
  // order so the RNG consumption sequence is a pure function of the seed
  // and the state — unordered_set iteration order is not reproducible
  // across reset() (bucket layout depends on insertion history).
  std::unordered_set<std::uint64_t> killed;
  if (q > 0.0) {
    std::vector<std::uint64_t> ordered(on_.begin(), on_.end());
    std::sort(ordered.begin(), ordered.end());
    for (std::uint64_t e : ordered) {
      if (rng_.bernoulli(q)) killed.insert(e);
    }
    for (std::uint64_t e : killed) on_.erase(e);
  }

  // Births: mark every pair with probability p via geometric skipping over
  // the linear pair enumeration.  A mark on a pair that was on pre-step is
  // a no-op (its dynamics are governed by the death rate), which restricts
  // births to exactly the pre-step off edges.  Pre-step on = survivor in
  // `on_` or member of `killed`.
  if (p > 0.0) {
    std::uint64_t e = rng_.geometric(p);
    while (e < total_pairs_) {
      if (!killed.contains(e)) {
        on_.insert(e);  // no-op if it survived (was already on)
      }
      e += 1 + rng_.geometric(p);
    }
  }

  rebuild_snapshot();
  advance_clock();
}

void TwoStateEdgeMEG::reset(std::uint64_t seed) {
  rng_.reseed(seed);
  reset_clock();
  initialize();
}

}  // namespace megflood
