#include "meg/node_meg.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace megflood {

ConnectionMap::ConnectionMap(std::vector<std::vector<bool>> rows)
    : rows_(std::move(rows)) {
  for (const auto& row : rows_) {
    if (row.size() != rows_.size()) {
      throw std::invalid_argument("ConnectionMap: matrix is not square");
    }
  }
  for (std::size_t a = 0; a < rows_.size(); ++a) {
    for (std::size_t b = a + 1; b < rows_.size(); ++b) {
      if (rows_[a][b] != rows_[b][a]) {
        throw std::invalid_argument("ConnectionMap: matrix is not symmetric");
      }
    }
  }
  flat_.resize(rows_.size() * rows_.size());
  for (std::size_t a = 0; a < rows_.size(); ++a) {
    for (std::size_t b = 0; b < rows_.size(); ++b) {
      flat_[a * rows_.size() + b] = rows_[a][b] ? 1 : 0;
    }
  }
}

std::vector<StateId> ConnectionMap::gamma(StateId x) const {
  std::vector<StateId> result;
  for (StateId y = 0; y < num_states(); ++y) {
    if (rows_.at(x)[y]) result.push_back(y);
  }
  return result;
}

NodeMegInvariants node_meg_invariants(const std::vector<double>& stationary,
                                      const ConnectionMap& connection) {
  if (stationary.size() != connection.num_states()) {
    throw std::invalid_argument("node_meg_invariants: arity mismatch");
  }
  NodeMegInvariants inv;
  for (StateId x = 0; x < stationary.size(); ++x) {
    double q = 0.0;  // q(x) = pi(Gamma(x))
    for (StateId y = 0; y < stationary.size(); ++y) {
      if (connection.connected(x, y)) q += stationary[y];
    }
    inv.p_nm += stationary[x] * q;
    inv.p_nm2 += stationary[x] * q * q;
  }
  inv.eta = inv.p_nm > 0.0 ? inv.p_nm2 / (inv.p_nm * inv.p_nm) : 0.0;
  return inv;
}

ExplicitNodeMEG::ExplicitNodeMEG(std::size_t num_nodes, DenseChain chain,
                                 ConnectionMap connection, std::uint64_t seed)
    : num_nodes_(num_nodes),
      chain_(std::move(chain)),
      connection_(std::move(connection)),
      rng_(seed) {
  if (num_nodes < 2) {
    throw std::invalid_argument("ExplicitNodeMEG: need at least 2 nodes");
  }
  if (chain_.num_states() != connection_.num_states()) {
    throw std::invalid_argument(
        "ExplicitNodeMEG: chain and connection state counts differ");
  }
  stationary_ = chain_.stationary();
  states_.resize(num_nodes_);
  snapshot_.reset(num_nodes_);
  initialize();
}

NodeMegInvariants ExplicitNodeMEG::invariants() const {
  return node_meg_invariants(stationary_, connection_);
}

void ExplicitNodeMEG::initialize() {
  for (auto& s : states_) s = DenseChain::sample_from(stationary_, rng_);
  rebuild_snapshot();
}

void ExplicitNodeMEG::rebuild_snapshot() {
  snapshot_.clear();
  for (NodeId i = 0; i + 1 < num_nodes_; ++i) {
    const std::uint8_t* row = connection_.flat_row(states_[i]);
    for (NodeId j = i + 1; j < num_nodes_; ++j) {
      if (row[states_[j]]) snapshot_.add_edge(i, j);
    }
  }
}

void ExplicitNodeMEG::step() {
  for (auto& s : states_) s = chain_.sample_next(s, rng_);
  rebuild_snapshot();
  advance_clock();
}

void ExplicitNodeMEG::reset(std::uint64_t seed) {
  rng_.reseed(seed);
  reset_clock();
  initialize();
}

void ExplicitNodeMEG::set_all_states(StateId s) {
  if (s >= chain_.num_states()) {
    throw std::out_of_range("set_all_states: state out of range");
  }
  for (auto& st : states_) st = s;
  rebuild_snapshot();
}

ConnectionMap same_state_connection(std::size_t num_states) {
  std::vector<std::vector<bool>> rows(num_states,
                                      std::vector<bool>(num_states, false));
  for (std::size_t s = 0; s < num_states; ++s) rows[s][s] = true;
  return ConnectionMap(std::move(rows));
}

ConnectionMap cycle_proximity_connection(std::size_t num_states,
                                         std::size_t radius) {
  std::vector<std::vector<bool>> rows(num_states,
                                      std::vector<bool>(num_states, false));
  const auto k = static_cast<std::ptrdiff_t>(num_states);
  for (std::ptrdiff_t a = 0; a < k; ++a) {
    for (std::ptrdiff_t b = 0; b < k; ++b) {
      const std::ptrdiff_t direct = std::abs(a - b);
      const std::ptrdiff_t wrap = k - direct;
      if (static_cast<std::size_t>(std::min(direct, wrap)) <= radius) {
        rows[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] = true;
      }
    }
  }
  return ConnectionMap(std::move(rows));
}

ConnectionMap active_subset_connection(std::size_t num_states,
                                       const std::vector<StateId>& active) {
  std::vector<bool> is_active(num_states, false);
  for (StateId s : active) is_active.at(s) = true;
  std::vector<std::vector<bool>> rows(num_states,
                                      std::vector<bool>(num_states, false));
  for (std::size_t a = 0; a < num_states; ++a) {
    for (std::size_t b = 0; b < num_states; ++b) {
      rows[a][b] = is_active[a] && is_active[b];
    }
  }
  return ConnectionMap(std::move(rows));
}

}  // namespace megflood
