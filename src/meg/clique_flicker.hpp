#pragma once

// Clique-flicker dynamic graph: the beta-independence ablation model.
//
// At every step, with probability `rho` the snapshot is a clique over a
// subset of `clique_size` nodes, otherwise it is empty; the subset itself
// is re-drawn uniformly with probability `resample_probability` per step
// and kept otherwise.  Per-pair snapshot probability is
// alpha = rho * m(m-1) / (n(n-1)) regardless of stickiness, but incident
// edges are *maximally positively correlated*: if one clique edge exists,
// all of them do — Theorem 1's beta is ~ n/(rho m), enormous.
//
// Purpose (ablation bench_a2 / DESIGN.md section 6), two findings:
//  * resample_probability = 1 (i.i.d. cliques): beta is huge yet flooding
//    matches the matched-alpha independent edge-MEG — the beta^2 factor
//    in Theorem 1's bound is sufficient-side slack, not a lower bound;
//  * resample_probability small (sticky cliques): the same snapshot
//    distribution floods far slower — consistent with Theorem 1, whose
//    conditional (M, alpha, beta)-stationarity forces the epoch length up
//    to the subset chain's mixing time ~ 1/resample_probability.

#include <cstdint>
#include <vector>

#include "core/dynamic_graph.hpp"
#include "util/rng.hpp"

namespace megflood {

class CliqueFlickerGraph final : public DynamicGraph {
 public:
  // Requires 2 <= clique_size <= num_nodes, rho in (0, 1], and
  // resample_probability in (0, 1].
  CliqueFlickerGraph(std::size_t num_nodes, std::size_t clique_size,
                     double rho, std::uint64_t seed,
                     double resample_probability = 1.0);

  std::size_t num_nodes() const override { return n_; }
  const Snapshot& snapshot() const override { return snapshot_; }
  void step() override;
  void reset(std::uint64_t seed) override;

  // Exact per-pair edge probability in a snapshot:
  // rho * C(m,2) / C(n,2) restated per fixed pair:
  // P(both endpoints in the clique) = m(m-1) / (n(n-1)).
  double edge_probability() const;

  // Exact beta for incident pairs: P(e1 & e2) / (P(e1) P(e2)) for two
  // incident edges {i,j}, {i,k}.
  double incident_beta() const;

  double resample_probability() const noexcept { return gamma_; }

 private:
  void resample_subset();
  void rebuild();

  std::size_t n_;
  std::size_t clique_size_;
  double rho_;
  double gamma_;
  Rng rng_;
  std::vector<NodeId> scratch_;  // first clique_size_ entries = subset
  Snapshot snapshot_;
};

}  // namespace megflood
