#pragma once

// The classic edge-Markovian evolving graph (paper Appendix A, reference
// [10]): every one of the n(n-1)/2 potential edges evolves independently
// by the two-state chain with birth rate p and death rate q.
//
// The implementation is output-sensitive: per step it touches only the
// edges currently on plus the O(p * n^2) newly-born candidates, via
// geometric skipping — so sparse regimes (p = c/n^2 .. c/n) scale to
// thousands of nodes.
//
// The on-edge set is a sorted vector of packed (i, j) keys maintained
// incrementally — deaths are filtered in place, births merged in — so a
// step performs no hashing, no re-sort, and (after warmup) no allocation;
// the triangular-index inversion runs only for the few birth candidates.
//
// In the storage-mode taxonomy of meg/storage.hpp this engine is
// *always* sparse: the two-state chain needs no per-pair hidden state,
// so the on-set is the entire representation (memory O(#on)) and the
// off majority has been implicit since PR 1.  The general and
// heterogeneous engines gained the same property via their
// minority-state maps; there is no dense mode to select here.

#include <cstdint>
#include <vector>

#include "core/dynamic_graph.hpp"
#include "markov/two_state.hpp"
#include "util/rng.hpp"

namespace megflood {

enum class EdgeMegInit {
  kStationary,  // each edge on with probability p/(p+q)
  kAllOff,      // worst-case empty start
  kAllOn,
};

class TwoStateEdgeMEG final : public DynamicGraph {
 public:
  TwoStateEdgeMEG(std::size_t num_nodes, TwoStateParams params,
                  std::uint64_t seed,
                  EdgeMegInit init = EdgeMegInit::kStationary);

  std::size_t num_nodes() const override { return n_; }
  const Snapshot& snapshot() const override { return snapshot_; }
  void step() override;
  void reset(std::uint64_t seed) override;

  const TwoStateChain& chain() const noexcept { return chain_; }

  // Number of potential edges, n(n-1)/2.
  std::uint64_t num_pairs() const noexcept { return total_pairs_; }

 private:
  void initialize();
  void rebuild_snapshot();

  std::size_t n_;
  TwoStateChain chain_;
  EdgeMegInit init_;
  Rng rng_;
  std::uint64_t total_pairs_;
  // On-edges as packed (i << 32) | j keys, i < j, sorted ascending — the
  // same order as the linear pair index (row-major), so the RNG
  // consumption sequence matches the historical sorted-set iteration.
  std::vector<std::uint64_t> on_;
  std::vector<std::uint64_t> killed_;  // step scratch, sorted
  std::vector<std::uint64_t> born_;    // step scratch, sorted
  std::vector<std::uint64_t> merged_;  // step scratch
  Snapshot snapshot_;
};

}  // namespace megflood
