#include "markov/chain.hpp"

#include <cassert>
#include <cmath>
#include <queue>
#include <stdexcept>

#include "graph/graph.hpp"

namespace megflood {

namespace {
constexpr double kRowSumTolerance = 1e-9;
}

DenseChain::DenseChain(std::vector<std::vector<double>> rows)
    : rows_(std::move(rows)) {
  const std::size_t n = rows_.size();
  for (const auto& row : rows_) {
    if (row.size() != n) {
      throw std::invalid_argument("DenseChain: matrix is not square");
    }
    double sum = 0.0;
    for (double p : row) {
      if (p < 0.0) throw std::invalid_argument("DenseChain: negative entry");
      sum += p;
    }
    if (std::abs(sum - 1.0) > kRowSumTolerance) {
      throw std::invalid_argument("DenseChain: row does not sum to 1");
    }
  }
}

std::vector<double> DenseChain::evolve(const std::vector<double>& mu) const {
  assert(mu.size() == rows_.size());
  std::vector<double> out(rows_.size(), 0.0);
  for (StateId i = 0; i < rows_.size(); ++i) {
    const double mass = mu[i];
    if (mass == 0.0) continue;
    const auto& row = rows_[i];
    for (StateId j = 0; j < row.size(); ++j) {
      out[j] += mass * row[j];
    }
  }
  return out;
}

std::vector<double> DenseChain::stationary(double tol,
                                           std::size_t max_iters) const {
  const std::size_t n = rows_.size();
  if (n == 0) return {};
  std::vector<double> mu(n, 1.0 / static_cast<double>(n));
  for (std::size_t iter = 0; iter < max_iters; ++iter) {
    // Damped iteration mu <- (mu + mu P) / 2: the lazy chain has the same
    // stationary vector for irreducible P but converges even when P is
    // periodic (e.g. non-lazy walks on bipartite graphs).
    const std::vector<double> evolved = evolve(mu);
    double residual = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double next = 0.5 * (mu[i] + evolved[i]);
      residual += std::abs(next - mu[i]);
      mu[i] = next;
    }
    if (residual < tol) return mu;
  }
  throw std::runtime_error("DenseChain::stationary: no convergence");
}

StateId DenseChain::sample_next(StateId from, Rng& rng) const {
  const auto& row = rows_.at(from);
  double u = rng.uniform();
  for (StateId j = 0; j < row.size(); ++j) {
    u -= row[j];
    if (u < 0.0) return j;
  }
  // Floating point slack: last state with positive probability.
  for (StateId j = row.size(); j-- > 0;) {
    if (row[j] > 0.0) return j;
  }
  return from;
}

StateId DenseChain::sample_from(const std::vector<double>& dist, Rng& rng) {
  double u = rng.uniform();
  for (StateId j = 0; j < dist.size(); ++j) {
    u -= dist[j];
    if (u < 0.0) return j;
  }
  for (StateId j = dist.size(); j-- > 0;) {
    if (dist[j] > 0.0) return j;
  }
  return 0;
}

bool DenseChain::is_irreducible() const {
  const std::size_t n = rows_.size();
  if (n == 0) return true;
  // Strong connectivity check on the positive-entry digraph.  For the
  // symmetric-support chains we use, forward reachability from state 0 in
  // both the graph and its transpose suffices.
  auto reachable = [&](bool transpose) {
    std::vector<char> seen(n, 0);
    std::queue<StateId> q;
    seen[0] = 1;
    q.push(0);
    std::size_t count = 1;
    while (!q.empty()) {
      const StateId u = q.front();
      q.pop();
      for (StateId v = 0; v < n; ++v) {
        const double p = transpose ? rows_[v][u] : rows_[u][v];
        if (p > 0.0 && !seen[v]) {
          seen[v] = 1;
          ++count;
          q.push(v);
        }
      }
    }
    return count == n;
  };
  return reachable(false) && reachable(true);
}

DenseChain DenseChain::lazy() const {
  std::vector<std::vector<double>> rows = rows_;
  for (StateId i = 0; i < rows.size(); ++i) {
    for (StateId j = 0; j < rows.size(); ++j) {
      rows[i][j] *= 0.5;
    }
    rows[i][i] += 0.5;
  }
  return DenseChain(std::move(rows));
}

DenseChain random_walk_chain(const Graph& g) {
  const std::size_t n = g.num_vertices();
  std::vector<std::vector<double>> rows(n, std::vector<double>(n, 0.0));
  for (VertexId v = 0; v < n; ++v) {
    const auto& nbrs = g.neighbors(v);
    if (nbrs.empty()) {
      rows[v][v] = 1.0;
      continue;
    }
    const double p = 1.0 / static_cast<double>(nbrs.size());
    for (VertexId u : nbrs) rows[v][u] = p;
  }
  return DenseChain(std::move(rows));
}

DenseChain lazy_random_walk_chain(const Graph& g) {
  return random_walk_chain(g).lazy();
}

}  // namespace megflood
