#pragma once

// Spectral quantities of reversible chains: the second-largest eigenvalue
// modulus (SLEM), the spectral gap, and the relaxation time.  These give
// the standard sandwich T_mix = Theta(t_rel * log(...)) that the paper's
// mixing-time inputs live in; the tests cross-validate the exact mixing
// times against 1/gap on chains with known spectra.

#include <cstddef>

#include "markov/chain.hpp"

namespace megflood {

// Second-largest eigenvalue modulus of a reversible chain, computed by
// power iteration on the pi-orthogonal complement of the constant
// eigenfunction.  Requires the chain to be irreducible (checked) and
// reversible w.r.t. its stationary distribution (checked up to `tol`).
// Throws std::invalid_argument otherwise.
double slem(const DenseChain& chain, double tol = 1e-9,
            std::size_t max_iters = 100'000);

// 1 - SLEM.
double spectral_gap(const DenseChain& chain);

// Relaxation time t_rel = 1 / gap.
double relaxation_time(const DenseChain& chain);

// Whether the chain satisfies detailed balance pi_i P_ij = pi_j P_ji.
bool is_reversible_chain(const DenseChain& chain, double tol = 1e-9);

}  // namespace megflood
