#include "markov/mixing.hpp"

#include <cassert>
#include <stdexcept>

#include "util/histogram.hpp"

namespace megflood {

double tv_from_stationary(const DenseChain& chain,
                          const std::vector<double>& stationary,
                          StateId start, std::size_t steps) {
  std::vector<double> mu(chain.num_states(), 0.0);
  mu.at(start) = 1.0;
  for (std::size_t t = 0; t < steps; ++t) mu = chain.evolve(mu);
  return total_variation(mu, stationary);
}

std::vector<double> mixing_profile(const DenseChain& chain,
                                   std::size_t max_steps) {
  const std::size_t n = chain.num_states();
  const auto pi = chain.stationary();
  // Evolve all n point-mass distributions in lockstep.
  std::vector<std::vector<double>> mus(n, std::vector<double>(n, 0.0));
  for (StateId s = 0; s < n; ++s) mus[s][s] = 1.0;
  std::vector<double> profile;
  profile.reserve(max_steps + 1);
  for (std::size_t t = 0; t <= max_steps; ++t) {
    double worst = 0.0;
    for (StateId s = 0; s < n; ++s) {
      const double d = total_variation(mus[s], pi);
      if (d > worst) worst = d;
    }
    profile.push_back(worst);
    if (t < max_steps) {
      for (StateId s = 0; s < n; ++s) mus[s] = chain.evolve(mus[s]);
    }
  }
  return profile;
}

namespace {

std::size_t mixing_time_impl(const DenseChain& chain,
                             const std::vector<StateId>& starts, double eps,
                             std::size_t max_steps) {
  assert(eps > 0.0 && eps < 1.0);
  const auto pi = chain.stationary();
  const std::size_t n = chain.num_states();
  std::vector<std::vector<double>> mus;
  mus.reserve(starts.size());
  for (StateId s : starts) {
    std::vector<double> mu(n, 0.0);
    mu.at(s) = 1.0;
    mus.push_back(std::move(mu));
  }
  for (std::size_t t = 0; t <= max_steps; ++t) {
    double worst = 0.0;
    for (const auto& mu : mus) {
      const double d = total_variation(mu, pi);
      if (d > worst) worst = d;
    }
    if (worst <= eps) return t;
    for (auto& mu : mus) mu = chain.evolve(mu);
  }
  throw std::runtime_error("mixing_time: chain did not mix within max_steps");
}

}  // namespace

std::size_t mixing_time(const DenseChain& chain, double eps,
                        std::size_t max_steps) {
  std::vector<StateId> starts(chain.num_states());
  for (StateId s = 0; s < starts.size(); ++s) starts[s] = s;
  return mixing_time_impl(chain, starts, eps, max_steps);
}

std::size_t mixing_time_from_starts(const DenseChain& chain,
                                    const std::vector<StateId>& starts,
                                    double eps, std::size_t max_steps) {
  if (starts.empty()) {
    throw std::invalid_argument("mixing_time_from_starts: empty start set");
  }
  return mixing_time_impl(chain, starts, eps, max_steps);
}

}  // namespace megflood
