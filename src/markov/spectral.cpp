#include "markov/spectral.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace megflood {

bool is_reversible_chain(const DenseChain& chain, double tol) {
  const auto pi = chain.stationary();
  const std::size_t n = chain.num_states();
  for (StateId i = 0; i < n; ++i) {
    for (StateId j = i + 1; j < n; ++j) {
      const double flow_ij = pi[i] * chain.transition(i, j);
      const double flow_ji = pi[j] * chain.transition(j, i);
      if (std::abs(flow_ij - flow_ji) > tol) return false;
    }
  }
  return true;
}

double slem(const DenseChain& chain, double tol, std::size_t max_iters) {
  const std::size_t n = chain.num_states();
  if (n < 2) return 0.0;
  if (!chain.is_irreducible()) {
    throw std::invalid_argument("slem: chain is not irreducible");
  }
  if (!is_reversible_chain(chain, 1e-7)) {
    throw std::invalid_argument("slem: chain is not reversible");
  }
  const auto pi = chain.stationary();

  // Power iteration on functions f: S -> R with the constant direction
  // deflated in the pi-inner product; P is self-adjoint there, so the
  // iteration converges to the eigenfunction of the SLEM.
  auto deflate = [&](std::vector<double>& f) {
    double mean = 0.0;
    for (StateId i = 0; i < n; ++i) mean += pi[i] * f[i];
    for (StateId i = 0; i < n; ++i) f[i] -= mean;
  };
  auto pi_norm = [&](const std::vector<double>& f) {
    double s = 0.0;
    for (StateId i = 0; i < n; ++i) s += pi[i] * f[i] * f[i];
    return std::sqrt(s);
  };
  auto apply = [&](const std::vector<double>& f) {
    std::vector<double> out(n, 0.0);
    for (StateId i = 0; i < n; ++i) {
      double acc = 0.0;
      const auto& row = chain.row(i);
      for (StateId j = 0; j < n; ++j) acc += row[j] * f[j];
      out[i] = acc;
    }
    return out;
  };

  // Deterministic non-constant start.
  std::vector<double> f(n);
  for (StateId i = 0; i < n; ++i) {
    f[i] = (i % 2 == 0 ? 1.0 : -1.0) +
           static_cast<double>(i) / static_cast<double>(n);
  }
  deflate(f);
  double norm = pi_norm(f);
  if (norm == 0.0) {
    f[0] += 1.0;
    deflate(f);
    norm = pi_norm(f);
  }
  for (StateId i = 0; i < n; ++i) f[i] /= norm;

  double lambda = 0.0;
  for (std::size_t iter = 0; iter < max_iters; ++iter) {
    std::vector<double> next = apply(f);
    deflate(next);  // guard numerical drift back into the constant dir
    const double next_norm = pi_norm(next);
    if (next_norm < 1e-300) return 0.0;  // second eigenvalue is ~0
    for (StateId i = 0; i < n; ++i) next[i] /= next_norm;
    const double new_lambda = next_norm;
    f = std::move(next);
    if (iter > 0 && std::abs(new_lambda - lambda) < tol) {
      return new_lambda;
    }
    lambda = new_lambda;
  }
  return lambda;  // best estimate after max_iters
}

double spectral_gap(const DenseChain& chain) { return 1.0 - slem(chain); }

double relaxation_time(const DenseChain& chain) {
  const double gap = spectral_gap(chain);
  if (gap <= 0.0) {
    throw std::runtime_error("relaxation_time: zero spectral gap");
  }
  return 1.0 / gap;
}

}  // namespace megflood
