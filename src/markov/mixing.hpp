#pragma once

// Exact mixing-time computation for explicit chains.  The paper's epoch
// length M is the mixing time of the underlying chain (Theorem 3 uses
// M = T_mix * log(2n / P_NM^2)); every experiment needs T_mix as an input
// to the bound formulas, so we compute it exactly where feasible.

#include <cstddef>
#include <vector>

#include "markov/chain.hpp"

namespace megflood {

// d(t) = max over start states s of TV( P^t(s, .), pi ).
// Evaluated by evolving one distribution per start state.
double tv_from_stationary(const DenseChain& chain,
                          const std::vector<double>& stationary,
                          StateId start, std::size_t steps);

// Worst-case mixing profile d(t) for t = 0..max_steps (inclusive).
std::vector<double> mixing_profile(const DenseChain& chain,
                                   std::size_t max_steps);

// T_mix(eps) = min { t : d(t) <= eps }.  The standard convention is
// eps = 1/4; Theorem 3's epoch construction uses the log-boosted version.
// Throws if not mixed within `max_steps`.
std::size_t mixing_time(const DenseChain& chain, double eps = 0.25,
                        std::size_t max_steps = 1'000'000);

// Mixing time from a restricted set of start states (distribution-evolution
// cost is O(|starts| * T * S^2); for structured chains extremal starts give
// the exact worst case and this keeps large chains tractable).
std::size_t mixing_time_from_starts(const DenseChain& chain,
                                    const std::vector<StateId>& starts,
                                    double eps = 0.25,
                                    std::size_t max_steps = 1'000'000);

}  // namespace megflood
