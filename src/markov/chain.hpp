#pragma once

// Finite Markov chains with explicit (dense) transition matrices.  These
// are the hidden chains M = (S, P) of the paper's node-MEGs and edge-MEGs
// when the state space is small enough to enumerate; they support exact
// stationary distributions and exact worst-case mixing times, which the
// experiment harnesses feed into the paper's bound formulas.

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace megflood {

using StateId = std::size_t;

// Row-stochastic dense transition matrix over states [0, size).
class DenseChain {
 public:
  // rows[i][j] = P(i -> j).  Throws if any row fails to sum to ~1 or has a
  // negative entry.
  explicit DenseChain(std::vector<std::vector<double>> rows);

  std::size_t num_states() const noexcept { return rows_.size(); }

  double transition(StateId from, StateId to) const {
    return rows_.at(from).at(to);
  }

  const std::vector<double>& row(StateId from) const { return rows_.at(from); }

  // One step of distribution evolution: returns mu * P.
  std::vector<double> evolve(const std::vector<double>& mu) const;

  // Stationary distribution via power iteration from the uniform start.
  // Converges for ergodic chains; throws if the residual has not dropped
  // below `tol` after `max_iters` (e.g. periodic chains).
  std::vector<double> stationary(double tol = 1e-12,
                                 std::size_t max_iters = 1'000'000) const;

  // Sample the next state from `from`.
  StateId sample_next(StateId from, Rng& rng) const;

  // Sample a state from an explicit distribution (e.g. the stationary one).
  static StateId sample_from(const std::vector<double>& dist, Rng& rng);

  // Whether every state can reach every other (strong connectivity of the
  // positive-transition digraph).
  bool is_irreducible() const;

  // Chain with transition matrix (P + I) / 2 — the standard lazy variant,
  // which is aperiodic whenever the original is irreducible.
  DenseChain lazy() const;

 private:
  std::vector<std::vector<double>> rows_;
};

// Uniform-step random walk on a graph: P(u -> v) = 1/deg(u) for neighbors.
// Isolated vertices self-loop with probability 1.
class Graph;  // fwd from graph/graph.hpp; definition required at call site
DenseChain random_walk_chain(const Graph& g);

// Lazy random walk: stay put with prob 1/2, else uniform neighbor.
DenseChain lazy_random_walk_chain(const Graph& g);

}  // namespace megflood
