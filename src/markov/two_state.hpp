#pragma once

// The two-state on/off chain that drives the classic edge-MEG of
// Clementi-Macci-Monti-Pasquale-Silvestri (reference [10] in the paper):
// an off edge is born with probability p per step, an on edge dies with
// probability q per step.  Closed forms for the stationary distribution
// and mixing time make this the exactly-analyzable baseline of the suite.

#include <cstddef>

#include "markov/chain.hpp"

namespace megflood {

struct TwoStateParams {
  double birth_rate = 0.0;  // p: P(off -> on)
  double death_rate = 0.0;  // q: P(on -> off)
};

class TwoStateChain {
 public:
  // Requires p in [0,1], q in [0,1], p + q > 0 (otherwise frozen).
  explicit TwoStateChain(TwoStateParams params);

  double birth_rate() const noexcept { return params_.birth_rate; }
  double death_rate() const noexcept { return params_.death_rate; }

  // Stationary P(on) = p / (p + q).
  double stationary_on() const noexcept;

  // Exact TV distance from stationarity after t steps from the worst
  // start: |1 - p - q|^t * max(pi_on, pi_off).
  double tv_after(std::size_t steps) const noexcept;

  // Exact T_mix(eps): smallest t with tv_after(t) <= eps.  The paper uses
  // T_mix = Theta(1/(p+q)).
  std::size_t mixing_time(double eps = 0.25) const;

  // Evolve a single edge state one step.
  bool step(bool on, Rng& rng) const noexcept;

  // Sample the stationary state.
  bool sample_stationary(Rng& rng) const noexcept;

  // 2x2 DenseChain view (state 0 = off, state 1 = on).
  DenseChain as_dense() const;

 private:
  TwoStateParams params_;
};

}  // namespace megflood
