#include "markov/two_state.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace megflood {

TwoStateChain::TwoStateChain(TwoStateParams params) : params_(params) {
  const double p = params_.birth_rate, q = params_.death_rate;
  if (p < 0.0 || p > 1.0 || q < 0.0 || q > 1.0) {
    throw std::invalid_argument("TwoStateChain: rates must be in [0,1]");
  }
  if (p + q <= 0.0) {
    throw std::invalid_argument("TwoStateChain: p + q must be positive");
  }
}

double TwoStateChain::stationary_on() const noexcept {
  return params_.birth_rate / (params_.birth_rate + params_.death_rate);
}

double TwoStateChain::tv_after(std::size_t steps) const noexcept {
  const double lambda = 1.0 - params_.birth_rate - params_.death_rate;
  const double pi_on = stationary_on();
  const double worst_gap = std::max(pi_on, 1.0 - pi_on);
  return std::pow(std::abs(lambda), static_cast<double>(steps)) * worst_gap;
}

std::size_t TwoStateChain::mixing_time(double eps) const {
  if (eps <= 0.0 || eps >= 1.0) {
    throw std::invalid_argument("mixing_time: eps must be in (0,1)");
  }
  // |lambda|^t * c <= eps  =>  t >= log(c/eps) / log(1/|lambda|)
  const double lambda =
      std::abs(1.0 - params_.birth_rate - params_.death_rate);
  if (lambda == 0.0) return tv_after(0) <= eps ? 0 : 1;
  std::size_t t = 0;
  // Closed-form guess, then settle exactly (cheap: tv_after is O(1)).
  const double c = std::max(stationary_on(), 1.0 - stationary_on());
  if (c > eps) {
    t = static_cast<std::size_t>(
        std::ceil(std::log(c / eps) / -std::log(lambda)));
  }
  while (t > 0 && tv_after(t - 1) <= eps) --t;
  while (tv_after(t) > eps) ++t;
  return t;
}

bool TwoStateChain::step(bool on, Rng& rng) const noexcept {
  if (on) return !rng.bernoulli(params_.death_rate);
  return rng.bernoulli(params_.birth_rate);
}

bool TwoStateChain::sample_stationary(Rng& rng) const noexcept {
  return rng.bernoulli(stationary_on());
}

DenseChain TwoStateChain::as_dense() const {
  const double p = params_.birth_rate, q = params_.death_rate;
  return DenseChain({{1.0 - p, p}, {q, 1.0 - q}});
}

}  // namespace megflood
