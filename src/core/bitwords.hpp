#pragma once

// Packed-word bit sets for the flooding engine: an informed set over n
// nodes is ceil(n/64) uint64 words, so set union (one flooding round) is
// word-parallel — 64 node memberships per OR.  Free functions over raw
// word pointers rather than a class, so the n x n all-sources reachability
// matrix can be stored as one flat allocation of n rows.

#include <bit>
#include <cstddef>
#include <cstdint>

namespace megflood {

inline constexpr std::size_t kBitWordBits = 64;

// Number of 64-bit words needed for n bits.
inline constexpr std::size_t bit_words(std::size_t n) noexcept {
  return (n + kBitWordBits - 1) / kBitWordBits;
}

inline void set_bit(std::uint64_t* words, std::size_t i) noexcept {
  words[i / kBitWordBits] |= std::uint64_t{1} << (i % kBitWordBits);
}

inline bool test_bit(const std::uint64_t* words, std::size_t i) noexcept {
  return (words[i / kBitWordBits] >> (i % kBitWordBits)) & 1u;
}

inline std::size_t popcount_words(const std::uint64_t* words,
                                  std::size_t count) noexcept {
  std::size_t total = 0;
  for (std::size_t w = 0; w < count; ++w) {
    total += static_cast<std::size_t>(std::popcount(words[w]));
  }
  return total;
}

// Calls fn(index) for every set bit, in increasing index order.
template <typename Fn>
inline void for_each_set_bit(const std::uint64_t* words, std::size_t count,
                             Fn&& fn) {
  for (std::size_t w = 0; w < count; ++w) {
    std::uint64_t bits = words[w];
    while (bits != 0) {
      const auto b = static_cast<std::size_t>(std::countr_zero(bits));
      fn(w * kBitWordBits + b);
      bits &= bits - 1;
    }
  }
}

// dst[w] |= src[w] over a word range — the all-sources flood applies this
// per snapshot edge, restricted to one worker's word-column block.
inline void or_words(std::uint64_t* dst, const std::uint64_t* src,
                     std::size_t count) noexcept {
  for (std::size_t w = 0; w < count; ++w) dst[w] |= src[w];
}

// Calls fn(index) for every bit set in `next` but not in `cur`, in
// increasing index order, offsetting indices by `base_bit` (the first bit
// of the word range being scanned).  The all-sources flood uses it to
// turn a word-column delta into per-source counter updates.
template <typename Fn>
inline void for_each_fresh_bit(const std::uint64_t* cur,
                               const std::uint64_t* next, std::size_t count,
                               std::size_t base_bit, Fn&& fn) {
  for (std::size_t w = 0; w < count; ++w) {
    std::uint64_t fresh = next[w] & ~cur[w];
    while (fresh != 0) {
      const auto b = static_cast<std::size_t>(std::countr_zero(fresh));
      fn(base_bit + w * kBitWordBits + b);
      fresh &= fresh - 1;
    }
  }
}

}  // namespace megflood
