#pragma once

// The scenario layer: named, parameterized experiment specifications that
// a driver (tools/megflood_run.cpp) can list, validate and execute
// without recompiling a bespoke main.  A scenario is a registered model
// name plus key=value parameters, a spreading-process spec, and a
// TrialConfig; running it yields the generic Measurement of core/trial.
//
// Model registry.  Every model the repo implements is registered with its
// full parameter schema (name, default, one-line doc); unknown model
// names and unknown parameter keys are hard errors, so a typo can never
// silently fall back to a default.  Registered models:
//   edge_meg          two-state edge-Markovian evolving graph
//   general_edge_meg  hidden-chain edge-MEG (bursty / duty-cycle /
//                     four-state links)
//   het_edge_meg      heterogeneous per-edge (p, q) edge-MEG
//   node_meg          explicit node-MEG (lazy cycle walk + connection map)
//   clique_flicker    beta-independence ablation model
//   random_walk       graph mobility: random walk on a grid
//   random_waypoint   geometric mobility over the square
//   random_trip       Le Boudec-Vojnovic random trip class
//   grid_paths        L-shaped shortest paths on a grid (random paths)
//   fixed             fixed-topology baseline (E_t = E for all t)
//   k_augmented_grid  static k-augmented grid/torus (Corollary 6)
//
// Process spec grammar (one token, optional ':'-argument):
//   flooding | gossip[:push|pull|pushpull] | kpush[:<k>] |
//   radio[:<tau>] | ttl[:<ttl>]

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/trial.hpp"

namespace megflood {

struct ScenarioSpec {
  std::string model;
  std::map<std::string, std::string> params;  // model key=value overrides
  std::string process = "flooding";
  TrialConfig trial;
  // --warmup=auto: resolve trial.warmup_steps from the model's suggested
  // warmup at run time.  Models that declare none (everything except the
  // geometric mobility models) make run_scenario fail hard — a silent
  // zero warmup would quietly measure the non-stationary start.
  bool warmup_auto = false;
};

// One declared model parameter: name, default (as the string the CLI
// would pass), one-line description.
struct ScenarioParam {
  std::string name;
  std::string default_value;
  std::string description;
};

struct ScenarioModelInfo {
  std::string name;
  std::string summary;
  std::vector<ScenarioParam> params;
};

// All registered models, in registration order (stable for --list).
const std::vector<ScenarioModelInfo>& scenario_models();

// Registry lookup; nullptr when `name` is not registered.
const ScenarioModelInfo* find_scenario_model(const std::string& name);

// A built model: the per-trial graph factory plus the node count the
// parameters resolved to (every registered model has an `n`), plus the
// model's suggested warmup (Theta(L / v_max) for the geometric mobility
// models; empty for models whose stationary start needs none — see
// --warmup=auto).
struct ScenarioModel {
  ScenarioModel() = default;
  ScenarioModel(GraphFactory f, std::size_t n,
                std::optional<std::uint64_t> warmup = std::nullopt)
      : factory(std::move(f)), num_nodes(n), suggested_warmup(warmup) {}

  GraphFactory factory;
  std::size_t num_nodes = 0;
  std::optional<std::uint64_t> suggested_warmup;
  // Operator-facing advisories from parameter resolution (e.g. what a
  // storage=auto request resolved to, or an explicit dense engine whose
  // footprint crosses the auto threshold).  Warnings never change results
  // — they surface the decisions graceful degradation made.  No commas in
  // the text: warnings travel inside one CSV cell.
  std::vector<std::string> warnings;
};

// Builds the trial graph factory for spec.model / spec.params.  Throws
// std::invalid_argument on an unknown model, an unknown parameter key, or
// a malformed/out-of-range value.
ScenarioModel make_model_factory(const ScenarioSpec& spec);

// Parses a process spec string (grammar above) into a factory of fresh
// process instances.  Throws std::invalid_argument on unknown process
// names or bad arguments.
ProcessFactory make_process_factory(const std::string& process_spec);

struct ScenarioResult {
  Measurement measurement;
  std::size_t num_nodes = 0;
  // Model-building advisories (ScenarioModel::warnings), passed through
  // for the driver's warning channel.
  std::vector<std::string> warnings;
};

// Validates and runs the scenario end to end: build model factory, build
// process factory, measure().  The hooks overload threads checkpointing,
// cancellation and fault-injection callbacks into measure() (see
// MeasureHooks); the plain overload is an uninstrumented run.
ScenarioResult run_scenario(const ScenarioSpec& spec);
ScenarioResult run_scenario(const ScenarioSpec& spec,
                            const MeasureHooks& hooks);

// ---------------------------------------------------------------------------
// CLI round-trip
// ---------------------------------------------------------------------------

// Serializes a spec to driver arguments:
//   --model=<name> [--<key>=<value> ...] --process=<spec> --trials=..
//   --seed=.. --max_rounds=.. --warmup=.. --threads=.. --rotate_sources=0|1
// Model params are emitted in sorted key order, so the output is
// deterministic and parse_scenario_args(scenario_to_args(s)) == s for
// every *canonical* spec.  --warmup accepts a step count or the literal
// `auto` (spec.warmup_auto); since the flag carries one value, a spec
// with warmup_auto set serializes as `auto` and parses back with
// warmup_steps = 0 — warmup_auto = true canonicalizes warmup_steps to 0
// (run_scenario ignores the field in auto mode either way).
std::vector<std::string> scenario_to_args(const ScenarioSpec& spec);
std::string scenario_to_cli(const ScenarioSpec& spec);  // args joined by ' '

// Parses driver arguments back into a spec.  Recognized driver flags are
// listed above; any other --key=value is treated as a model parameter
// (validated against the registry by make_model_factory).  Throws
// std::invalid_argument on malformed arguments.
ScenarioSpec parse_scenario_args(const std::vector<std::string>& args);
ScenarioSpec parse_scenario_cli(const std::string& cli);  // split on spaces

}  // namespace megflood
