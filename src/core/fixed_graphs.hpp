#pragma once

// Degenerate dynamic graphs: a constant topology (flooding = synchronous
// BFS) and a scripted sequence of snapshots (for deterministic tests and
// for replaying recorded traces through the flooding / protocol machinery).

#include <cstdint>
#include <vector>

#include "core/dynamic_graph.hpp"
#include "graph/graph.hpp"

namespace megflood {

// E_t = E for all t.  reset() is a no-op besides the clock.
class FixedDynamicGraph final : public DynamicGraph {
 public:
  explicit FixedDynamicGraph(const Graph& graph);

  std::size_t num_nodes() const override { return snapshot_.num_nodes(); }
  const Snapshot& snapshot() const override { return snapshot_; }
  void step() override { advance_clock(); }
  void reset(std::uint64_t /*seed*/) override { reset_clock(); }

 private:
  Snapshot snapshot_;
};

// Plays a fixed sequence of snapshots; after the last one it repeats the
// final snapshot forever (or cycles, if `cycle` is set).
class ScriptedDynamicGraph final : public DynamicGraph {
 public:
  ScriptedDynamicGraph(std::vector<Snapshot> script, bool cycle = false);

  std::size_t num_nodes() const override;
  const Snapshot& snapshot() const override;
  void step() override;
  void reset(std::uint64_t /*seed*/) override;

 private:
  std::vector<Snapshot> script_;
  bool cycle_;
  std::size_t cursor_ = 0;
};

}  // namespace megflood
