#include "core/checkpoint.hpp"

#include <cstring>
#include <stdexcept>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace megflood {

namespace {

constexpr std::uint64_t kMagic = 0x3150'4b43'4647'454dULL;  // "MEGFCKP1"
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kKindOutcome = 1;
constexpr std::uint32_t kKindError = 2;
// Frame fields around every payload: kind + trial + length before,
// checksum after.
constexpr std::size_t kFrameOverhead = 4 + 8 + 4 + 8;
// A corrupt length field must not drive a multi-gigabyte allocation while
// scanning for the valid prefix; no legitimate payload gets near this.
constexpr std::uint32_t kMaxPayload = 64u << 20;

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}
void put_u32(std::string& out, std::uint32_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}
void put_u64(std::string& out, std::uint64_t v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}
void put_f64(std::string& out, double v) {
  out.append(reinterpret_cast<const char*>(&v), sizeof v);
}
void put_str(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

// Bounds-checked reader over a byte buffer; every get_* sets ok_ = false
// on overrun instead of reading garbage, so a torn tail parses as
// "incomplete record", never as undefined behavior.
class Cursor {
 public:
  Cursor(const char* data, std::size_t size) : data_(data), size_(size) {}

  bool ok() const noexcept { return ok_; }
  std::size_t offset() const noexcept { return offset_; }
  bool at_end() const noexcept { return offset_ == size_; }

  std::uint8_t get_u8() { return get<std::uint8_t>(); }
  std::uint32_t get_u32() { return get<std::uint32_t>(); }
  std::uint64_t get_u64() { return get<std::uint64_t>(); }
  double get_f64() { return get<double>(); }

  std::string get_bytes(std::size_t count) {
    if (!ok_ || size_ - offset_ < count) {
      ok_ = false;
      return {};
    }
    std::string out(data_ + offset_, count);
    offset_ += count;
    return out;
  }

 private:
  template <typename T>
  T get() {
    T value{};
    if (!ok_ || size_ - offset_ < sizeof(T)) {
      ok_ = false;
      return value;
    }
    std::memcpy(&value, data_ + offset_, sizeof(T));
    offset_ += sizeof(T);
    return value;
  }

  const char* data_;
  std::size_t size_;
  std::size_t offset_ = 0;
  bool ok_ = true;
};

std::string header_bytes(const CheckpointKey& key) {
  std::string out;
  put_u64(out, kMagic);
  put_u32(out, kVersion);
  put_u64(out, key.campaign.seed);
  put_u64(out, key.campaign.trials);
  put_u64(out, key.threads);
  put_str(out, key.campaign.scenario_cli);
  return out;
}

std::string outcome_payload(const TrialOutcome& outcome) {
  std::string out;
  put_u8(out, outcome.completed ? 1 : 0);
  put_f64(out, outcome.rounds);
  put_f64(out, outcome.spreading);
  put_f64(out, outcome.saturation);
  put_u32(out, static_cast<std::uint32_t>(outcome.metrics.size()));
  for (const auto& [name, value] : outcome.metrics) {
    put_str(out, name);
    put_f64(out, value);
  }
  return out;
}

bool parse_outcome(const std::string& payload, TrialOutcome& out) {
  Cursor cur(payload.data(), payload.size());
  out.completed = cur.get_u8() != 0;
  out.rounds = cur.get_f64();
  out.spreading = cur.get_f64();
  out.saturation = cur.get_f64();
  const std::uint32_t n_metrics = cur.get_u32();
  out.metrics.clear();
  for (std::uint32_t i = 0; cur.ok() && i < n_metrics; ++i) {
    const std::uint32_t len = cur.get_u32();
    std::string name = cur.get_bytes(len);
    const double value = cur.get_f64();
    if (cur.ok()) out.metrics.emplace(std::move(name), value);
  }
  return cur.ok() && cur.at_end();
}

std::string error_payload(const TrialError& error) {
  std::string out;
  put_u64(out, error.graph_seed);
  put_u64(out, error.process_seed);
  put_str(out, error.what);
  return out;
}

bool parse_error(const std::string& payload, std::uint64_t trial,
                 TrialError& out) {
  Cursor cur(payload.data(), payload.size());
  out.trial = static_cast<std::size_t>(trial);
  out.graph_seed = cur.get_u64();
  out.process_seed = cur.get_u64();
  const std::uint32_t len = cur.get_u32();
  out.what = cur.get_bytes(len);
  return cur.ok() && cur.at_end();
}

[[noreturn]] void io_error(const std::string& path, const std::string& what) {
  throw std::runtime_error("checkpoint " + path + ": " + what);
}

std::string read_whole_file(std::FILE* file, const std::string& path) {
  std::string bytes;
  char buffer[1 << 16];
  std::size_t got;
  while ((got = std::fread(buffer, 1, sizeof buffer, file)) > 0) {
    bytes.append(buffer, got);
  }
  if (std::ferror(file)) io_error(path, "read failed");
  return bytes;
}

void truncate_file(const std::string& path, const std::string& valid_prefix) {
#if defined(__unix__) || defined(__APPLE__)
  if (::truncate(path.c_str(), static_cast<off_t>(valid_prefix.size())) != 0) {
    io_error(path, "could not truncate torn tail");
  }
#else
  // No truncate syscall: rewrite the valid prefix.
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (!file) io_error(path, "could not rewrite torn journal");
  const bool ok = std::fwrite(valid_prefix.data(), 1, valid_prefix.size(),
                              file) == valid_prefix.size();
  std::fclose(file);
  if (!ok) io_error(path, "could not rewrite torn journal");
#endif
}

}  // namespace

bool peek_checkpoint_key(const std::string& path, CheckpointKey& out) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (!file) return false;
  // Fixed-width header prefix: magic, version, seed, trials, threads,
  // cli_len — followed by cli_len bytes of canonical CLI.
  char prefix[8 + 4 + 8 + 8 + 8 + 4];
  if (std::fread(prefix, 1, sizeof prefix, file) != sizeof prefix) {
    std::fclose(file);
    return false;
  }
  Cursor cur(prefix, sizeof prefix);
  const std::uint64_t magic = cur.get_u64();
  const std::uint32_t version = cur.get_u32();
  CheckpointKey key;
  key.campaign.seed = cur.get_u64();
  key.campaign.trials = cur.get_u64();
  key.threads = cur.get_u64();
  const std::uint32_t cli_len = cur.get_u32();
  if (!cur.ok() || magic != kMagic || version != kVersion ||
      cli_len > kMaxPayload) {
    std::fclose(file);
    return false;
  }
  std::string cli(cli_len, '\0');
  const bool got_cli =
      std::fread(cli.data(), 1, cli_len, file) == cli_len;
  std::fclose(file);
  if (!got_cli) return false;
  key.campaign.scenario_cli = std::move(cli);
  out = std::move(key);
  return true;
}

CheckpointJournal::CheckpointJournal(std::string path,
                                     const CheckpointKey& key)
    : path_(std::move(path)) {
  const std::string header = header_bytes(key);
  std::string existing;
  if (std::FILE* file = std::fopen(path_.c_str(), "rb")) {
    existing = read_whole_file(file, path_);
    std::fclose(file);
  }
  if (existing.empty()) {
    // New journal: write the header and start appending after it.
    std::FILE* file = std::fopen(path_.c_str(), "wb");
    if (!file) io_error(path_, "cannot create");
    if (std::fwrite(header.data(), 1, header.size(), file) != header.size() ||
        std::fflush(file) != 0) {
      std::fclose(file);
      io_error(path_, "cannot write header");
    }
    file_ = file;
    return;
  }
  // Existing journal: the header must bind the same campaign.
  if (existing.size() < header.size() ||
      std::memcmp(existing.data(), header.data(), header.size()) != 0) {
    throw std::invalid_argument(
        "checkpoint " + path_ +
        ": header does not match this campaign (scenario CLI, seed, trials "
        "and threads must all be identical; delete the file to start over)");
  }
  // Replay complete records; stop at the first torn or corrupt frame.
  std::size_t valid_end = header.size();
  Cursor cur(existing.data() + header.size(),
             existing.size() - header.size());
  while (!cur.at_end()) {
    const std::uint32_t kind = cur.get_u32();
    const std::uint64_t trial = cur.get_u64();
    const std::uint32_t len = cur.get_u32();
    if (!cur.ok() || len > kMaxPayload) break;
    const std::string payload = cur.get_bytes(len);
    const std::uint64_t checksum = cur.get_u64();
    if (!cur.ok() || checksum != fnv1a(payload)) break;
    if (kind == kKindOutcome && trial < key.campaign.trials) {
      TrialOutcome outcome;
      if (!parse_outcome(payload, outcome)) break;
      done_[static_cast<std::size_t>(trial)] = std::move(outcome);
    } else if (kind == kKindError) {
      TrialError error;
      if (!parse_error(payload, trial, error)) break;
      replayed_errors_.push_back(std::move(error));
    } else {
      break;  // unknown kind or out-of-range trial: treat as corruption
    }
    valid_end = header.size() + cur.offset();
  }
  replayed_ = done_.size();
  if (valid_end < existing.size()) {
    truncate_file(path_, existing.substr(0, valid_end));
  }
  file_ = std::fopen(path_.c_str(), "ab");
  if (!file_) io_error(path_, "cannot reopen for append");
}

CheckpointJournal::~CheckpointJournal() {
  if (file_) std::fclose(file_);
}

const TrialOutcome* CheckpointJournal::find(std::size_t trial) const {
  const auto it = done_.find(trial);
  return it == done_.end() ? nullptr : &it->second;
}

void CheckpointJournal::append_record(std::uint32_t kind, std::uint64_t trial,
                                      const std::string& payload) {
  std::string frame;
  frame.reserve(kFrameOverhead + payload.size());
  put_u32(frame, kind);
  put_u64(frame, trial);
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  frame.append(payload);
  put_u64(frame, fnv1a(payload));
  const std::lock_guard<std::mutex> lock(mutex_);
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size() ||
      std::fflush(file_) != 0) {
    io_error(path_, "append failed (disk full?)");
  }
}

void CheckpointJournal::record(std::size_t trial,
                               const TrialOutcome& outcome) {
  append_record(kKindOutcome, trial, outcome_payload(outcome));
}

void CheckpointJournal::record_error(const TrialError& error) {
  append_record(kKindError, error.trial, error_payload(error));
}

}  // namespace megflood
