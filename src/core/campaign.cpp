#include "core/campaign.hpp"

#include <stdexcept>

#include "core/scenario.hpp"

namespace megflood {

namespace {

constexpr const char* kTag = "megfcamp1";

[[noreturn]] void bad_key(const std::string& text, const std::string& why) {
  throw std::invalid_argument("campaign key '" + text + "': " + why);
}

// Parses "<field>=<u64>|" starting at `pos`; advances `pos` past the '|'.
std::uint64_t take_u64_field(const std::string& text, const char* field,
                             std::size_t& pos) {
  const std::string prefix = std::string(field) + "=";
  if (text.compare(pos, prefix.size(), prefix) != 0) {
    bad_key(text, "expected '" + prefix + "'");
  }
  pos += prefix.size();
  const std::size_t bar = text.find('|', pos);
  if (bar == std::string::npos || bar == pos) {
    bad_key(text, std::string("missing ") + field + " value");
  }
  std::uint64_t value = 0;
  for (std::size_t i = pos; i < bar; ++i) {
    const char c = text[i];
    if (c < '0' || c > '9') {
      bad_key(text, std::string(field) + " is not a non-negative integer");
    }
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) {
      bad_key(text, std::string(field) + " overflows 64 bits");
    }
    value = value * 10 + digit;
  }
  pos = bar + 1;
  return value;
}

}  // namespace

CampaignKey campaign_key(const ScenarioSpec& spec) {
  CampaignKey key;
  key.scenario_cli = scenario_to_cli(spec);
  key.seed = spec.trial.seed;
  key.trials = spec.trial.trials;
  return key;
}

std::string campaign_key_string(const CampaignKey& key) {
  return std::string(kTag) + "|seed=" + std::to_string(key.seed) +
         "|trials=" + std::to_string(key.trials) + "|" + key.scenario_cli;
}

CampaignKey parse_campaign_key(const std::string& text) {
  std::size_t pos = 0;
  const std::string tag = std::string(kTag) + "|";
  if (text.compare(0, tag.size(), tag) != 0) {
    bad_key(text, std::string("expected '") + kTag + "|' tag");
  }
  pos = tag.size();
  CampaignKey key;
  key.seed = take_u64_field(text, "seed", pos);
  key.trials = take_u64_field(text, "trials", pos);
  key.scenario_cli = text.substr(pos);
  if (key.scenario_cli.empty()) bad_key(text, "empty scenario CLI");
  if (key.scenario_cli.find('\n') != std::string::npos) {
    bad_key(text, "scenario CLI contains a newline");
  }
  return key;
}

std::uint64_t campaign_key_hash(const std::string& key_string) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : key_string) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::uint64_t campaign_key_hash(const CampaignKey& key) {
  return campaign_key_hash(campaign_key_string(key));
}

}  // namespace megflood
