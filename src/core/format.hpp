#pragma once

// Result serialization shared by every consumer of a ScenarioResult: the
// megflood_run CLI (table / csv / json formats) and the serve layer's JSON
// replies (serve/scheduler.cpp) route through these emitters, so quoting,
// escaping and the numeric-vs-null convention exist exactly once
// (ISSUE 8).  The flat (column, value) field list is the one source of
// truth for column names and ordering; round statistics are empty strings
// (CSV) / null (JSON) when no trial completed — never a fake 0.

#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace megflood {

struct ScenarioSpec;
struct ScenarioResult;
struct Measurement;

// %.10g — the one float-to-text policy for machine-readable output.
std::string format_double(double value);

// A numeric literal that round-trips through the CLI parameter parsers:
// integral values print integral (an n sweep must produce "128", not
// "128.0", to survive the u64 parser), everything else %.10g.
std::string format_cli_number(double value);

// JSON string literal: quotes, backslash-escapes '"' and '\\', and
// \u00XX-escapes control characters so an emitted line can never contain
// a raw newline (the serve protocol is newline-delimited).
std::string json_quote(const std::string& s);

using ResultFields = std::vector<std::pair<std::string, std::string>>;

// Flat (column, value) rows shared by the csv and json emitters.
ResultFields result_fields(const ScenarioSpec& spec,
                           const ScenarioResult& result);

// The warning channel collapses to one CSV cell, so individual warnings
// must stay comma-free (enforced at the sources) and are ';'-joined here.
std::string join_warnings(const std::vector<std::string>& warnings);

void emit_csv_header(std::ostream& out, const ResultFields& fields);
void emit_csv_row(std::ostream& out, const ResultFields& fields);

// Header + one row, with the warnings column appended.
void emit_csv(std::ostream& out, const ScenarioSpec& spec,
              const ScenarioResult& result,
              const std::vector<std::string>& warnings);

// The result as one JSON object, "{...}" with no trailing newline — the
// exact bytes the serve layer caches and replays (cache hits are
// byte-identical because this is the only serializer).
std::string result_json_object(const ScenarioSpec& spec,
                               const ScenarioResult& result,
                               const std::vector<std::string>& warnings);

// result_json_object + '\n' (the CLI --format=json output).
void emit_json(std::ostream& out, const ScenarioSpec& spec,
               const ScenarioResult& result,
               const std::vector<std::string>& warnings);

// Human-facing table (the CLI default format).
void emit_table(std::ostream& out, const ScenarioSpec& spec,
                const ScenarioResult& result);

}  // namespace megflood
