#include "core/trace.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace megflood {

std::vector<Snapshot> record_trace(DynamicGraph& graph, std::size_t steps) {
  std::vector<Snapshot> trace;
  trace.reserve(steps + 1);
  trace.push_back(graph.snapshot());
  for (std::size_t t = 0; t < steps; ++t) {
    graph.step();
    trace.push_back(graph.snapshot());
  }
  return trace;
}

ScriptedDynamicGraph replay_trace(DynamicGraph& graph, std::size_t steps,
                                  bool cycle) {
  return ScriptedDynamicGraph(record_trace(graph, steps), cycle);
}

void write_trace(std::ostream& os, const std::vector<Snapshot>& trace) {
  for (std::size_t t = 0; t < trace.size(); ++t) {
    os << "t " << t << "\n";
    for (const auto& [u, v] : trace[t].edges()) {
      os << u << " " << v << "\n";
    }
  }
}

std::vector<Snapshot> read_trace(std::istream& is, std::size_t num_nodes) {
  std::vector<Snapshot> trace;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream ls(line);
    if (line[0] == 't') {
      char tag;
      std::size_t index;
      if (!(ls >> tag >> index) || index != trace.size()) {
        throw std::invalid_argument("read_trace: bad header at line " +
                                    std::to_string(line_no));
      }
      trace.emplace_back(num_nodes);
    } else {
      if (trace.empty()) {
        throw std::invalid_argument("read_trace: edge before first header");
      }
      std::uint64_t u, v;
      if (!(ls >> u >> v) || u >= num_nodes || v >= num_nodes || u == v) {
        throw std::invalid_argument("read_trace: bad edge at line " +
                                    std::to_string(line_no));
      }
      trace.back().add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v));
    }
  }
  if (trace.empty()) {
    throw std::invalid_argument("read_trace: empty trace");
  }
  return trace;
}

}  // namespace megflood
