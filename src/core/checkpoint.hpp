#pragma once

// Durable campaign progress: a compact append-only binary journal of
// completed trial outcomes, implementing the CheckpointSink interface of
// core/trial.hpp.
//
// File layout (native-endian, fixed-width little fields; journals are a
// crash-recovery artifact for one host, not a portable interchange
// format):
//
//   header:  u64 magic "MEGFCKP1" | u32 version | u64 seed | u64 trials
//            | u64 threads | u32 cli_len | cli bytes
//   record:  u32 kind (1 = outcome, 2 = error) | u64 trial
//            | u32 payload_len | payload | u64 FNV-1a(payload)
//   outcome payload: u8 completed | f64 rounds | f64 spreading
//            | f64 saturation | u32 n_metrics | { u32 len | name | f64 }*
//   error payload:   u64 graph_seed | u64 process_seed | u32 len | what
//
// The header binds the campaign identity — the canonical scenario CLI
// (scenario_to_cli), the seed, the trial count and the thread count — so
// a journal can never silently resume a different experiment.  Doubles
// are stored as raw bit patterns: a replayed outcome is bit-identical to
// the outcome the interrupted run computed, which is what makes
// interrupted-then-resumed campaigns byte-identical to uninterrupted
// ones.  Every record is flushed to the kernel before the runner counts
// the trial as done, so a SIGKILL loses at most the in-flight trial; a
// torn final record (killed mid-write) is detected by the length/checksum
// frame and truncated away on reopen.

#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/trial.hpp"

namespace megflood {

// The identity a journal binds: the tree-wide canonical campaign key
// (core/campaign.hpp — canonical scenario CLI + seed + trials, the same
// key the serve cache uses) plus the thread count.  Threads do not change
// results (the trial-order merge is bit-identical for any thread count),
// but the journal binds them anyway so a resumed run reproduces the
// interrupted run's execution shape exactly.
struct CheckpointKey {
  CampaignKey campaign;
  std::uint64_t threads = 0;
};

// Reads just the header of the journal at `path` and returns the
// CheckpointKey it binds, without replaying records — how a restarted
// daemon discovers which campaign an orphaned journal belongs to.
// Returns false (leaving `out` untouched) when the file is missing,
// unreadable, or does not start with a valid journal header.
bool peek_checkpoint_key(const std::string& path, CheckpointKey& out);

class CheckpointJournal final : public CheckpointSink {
 public:
  // Opens or creates the journal at `path`.  A new (or empty) file gets
  // the header for `key`; an existing file must carry a matching header
  // (mismatch = std::invalid_argument — the config-error path) and has
  // its complete records replayed into memory.  A torn tail is truncated
  // so the file ends on a record boundary before appends resume.
  // Throws std::runtime_error on I/O failure.
  CheckpointJournal(std::string path, const CheckpointKey& key);
  ~CheckpointJournal() override;

  CheckpointJournal(const CheckpointJournal&) = delete;
  CheckpointJournal& operator=(const CheckpointJournal&) = delete;

  // CheckpointSink: find() serves the replayed outcomes; record()
  // appends one framed record and flushes it to the kernel before
  // returning (record/record_error are serialized internally, safe from
  // concurrent workers).
  const TrialOutcome* find(std::size_t trial) const override;
  void record(std::size_t trial, const TrialOutcome& outcome) override;
  void record_error(const TrialError& error) override;

  // Outcomes replayed from disk at open (before any new record()).
  std::size_t replayed_trials() const noexcept { return replayed_; }
  // Error records found at open — informational only: errored trials are
  // *retried* on resume, never skipped.
  const std::vector<TrialError>& replayed_errors() const noexcept {
    return replayed_errors_;
  }
  const std::string& path() const noexcept { return path_; }

 private:
  void append_record(std::uint32_t kind, std::uint64_t trial,
                     const std::string& payload);

  std::string path_;
  std::FILE* file_ = nullptr;
  std::mutex mutex_;
  std::map<std::size_t, TrialOutcome> done_;
  std::vector<TrialError> replayed_errors_;
  std::size_t replayed_ = 0;
};

}  // namespace megflood
