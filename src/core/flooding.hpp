#pragma once

// The flooding process of Section 2: I_0 = {s};
// I_{t+1} = I_t ∪ { j : ∃ i ∈ I_t with {i, j} ∈ E_t }.
// F(G, s) = min { t : I_t = [n] } and F(G) = max_s F(G, s).
//
// flood() runs the process on a live DynamicGraph and records the full
// |I_t| trajectory, which experiment E9 uses to check the paper's
// spreading-phase doubling (Lemma 11/13) and saturation phase (Lemma 14).

#include <cstdint>
#include <vector>

#include "core/dynamic_graph.hpp"

namespace megflood {

struct FloodResult {
  // True iff all n nodes were informed within the step budget.
  bool completed = false;
  // F(G, s): the first t with |I_t| = n (undefined if !completed; set to
  // the budget in that case so aggregate statistics stay conservative).
  std::uint64_t rounds = 0;
  // informed_counts[t] = |I_t| for t = 0 .. rounds.
  std::vector<std::size_t> informed_counts;
};

// Runs flooding from `source` on `graph` starting at the graph's current
// snapshot.  Advances the graph `rounds` times; the caller owns resetting
// the graph between trials.
FloodResult flood(DynamicGraph& graph, NodeId source, std::uint64_t max_rounds);

// One flooding round applied to an explicit informed set: returns the
// number of newly informed nodes and updates `informed` /
// `informed_count`.  Shared by flood() and the protocol variants.
std::size_t flood_round(const Snapshot& snapshot, std::vector<char>& informed,
                        std::vector<NodeId>& frontier);

// Rounds spent in the spreading phase (|I_t| < n/2) and the saturation
// phase (n/2 <= |I_t| < n) of a completed flood; {0, 0} if not completed.
struct PhaseSplit {
  std::uint64_t spreading_rounds = 0;
  std::uint64_t saturation_rounds = 0;
};
PhaseSplit split_phases(const FloodResult& result, std::size_t num_nodes);

// Runs flooding from *every* source over the SAME realization of the
// dynamic process (the graph is reset(seed) once, its snapshot sequence
// recorded, and each source replayed against it) and returns all n
// per-source results.  max_s rounds is the paper's F(G, s) maximized over
// s; use all_sources_flooding(...).max_rounds for F(G) on one sample
// path.  Memory: records up to `max_rounds` snapshots — intended for
// small/medium instances.
struct AllSourcesResult {
  std::vector<FloodResult> per_source;
  std::uint64_t max_rounds = 0;   // F(G) on this realization
  std::uint64_t min_rounds = 0;
  bool all_completed = false;
};
AllSourcesResult flood_all_sources(DynamicGraph& graph,
                                   std::uint64_t max_rounds);

}  // namespace megflood
