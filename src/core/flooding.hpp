#pragma once

// The flooding process of Section 2: I_0 = {s};
// I_{t+1} = I_t ∪ { j : ∃ i ∈ I_t with {i, j} ∈ E_t }.
// F(G, s) = min { t : I_t = [n] } and F(G) = max_s F(G, s).
//
// flood() runs the process on a live DynamicGraph and records the full
// |I_t| trajectory, which experiment E9 uses to check the paper's
// spreading-phase doubling (Lemma 11/13) and saturation phase (Lemma 14).
//
// Engine: informed sets are packed uint64 words (core/bitwords.hpp).  The
// single-source round scans only informed nodes via word iteration; the
// all-sources variant keeps the n x n reachability matrix as bit-rows
// (row[v] = sources that have reached v) and updates it with two word-wide
// ORs per snapshot edge — ~64x less scalar work than the per-source scan.

#include <cstdint>
#include <vector>

#include "core/dynamic_graph.hpp"

namespace megflood {

struct FloodResult {
  // True iff all n nodes were informed within the step budget.
  bool completed = false;
  // F(G, s): the first t with |I_t| = n (undefined if !completed; set to
  // the budget in that case so aggregate statistics stay conservative).
  std::uint64_t rounds = 0;
  // informed_counts[t] = |I_t| for t = 0 .. rounds.
  std::vector<std::size_t> informed_counts;
};

// Runs flooding from `source` on `graph` starting at the graph's current
// snapshot.  Advances the graph `rounds` times; the caller owns resetting
// the graph between trials.
FloodResult flood(DynamicGraph& graph, NodeId source, std::uint64_t max_rounds);

// One flooding round applied to an explicit informed set: returns the
// number of newly informed nodes and updates `informed` /
// `informed_count`.  Shared by flood() and the protocol variants.
std::size_t flood_round(const Snapshot& snapshot, std::vector<char>& informed,
                        std::vector<NodeId>& frontier);

// Word-packed flooding round: `cur` and `next` are bit sets of
// bit_words(n) words; on entry next must equal cur.  Computes
// I_{t+1} = I_t ∪ N(I_t) into `next` and returns |I_{t+1}| - |I_t|.
std::size_t flood_round_words(const Snapshot& snapshot,
                              const std::uint64_t* cur, std::uint64_t* next,
                              std::size_t num_nodes);

// Rounds spent in the spreading phase (|I_t| < n/2) and the saturation
// phase (n/2 <= |I_t| < n) of a completed flood; {0, 0} if not completed.
struct PhaseSplit {
  std::uint64_t spreading_rounds = 0;
  std::uint64_t saturation_rounds = 0;
};
PhaseSplit split_phases(const FloodResult& result, std::size_t num_nodes);

// Runs flooding from *every* source over the SAME realization of the
// dynamic process (all n floods advance in lockstep against the live
// snapshot stream) and returns all n per-source results.
//
// Aggregate semantics (explicit, since a budgeted run may not complete):
//  - completed_count: number of sources with per_source[s].completed.
//  - all_completed:   completed_count == n.
//  - max_rounds: F(G) on this realization if all_completed; otherwise the
//    budget `max_rounds`, a conservative lower bound on F(G).
//  - min_rounds: min_s F(G, s) over *completed* sources only; if no
//    source completed it is the budget (NOT a valid minimum — check
//    completed_count before reading it as a radius).
//
// `threads` parallelizes the round kernel by partitioning the bit-row
// reachability matrix into contiguous word-column blocks (i.e. disjoint
// slices of the source axis): each worker applies row[v] |= row[u] over
// its own word block for the whole edge list, and owns the per-source
// counters of the sources in its block, so there are no shared writes and
// no atomics in the hot loop.  The partition only splits independent
// per-source computations, so the result is bit-for-bit identical for
// every thread count.  1 = serial (no worker threads spawned), 0 = one
// worker per hardware thread; workers are capped at one per word column.
//
// The per-round delta extraction keeps a per-word-column count of
// not-yet-done sources and scans only columns with incomplete sources: a
// done source's column bits are all set, so it can never produce a fresh
// bit again, and once a whole column completes its per-bit scan is pure
// overhead for the rest of the run (long tails where one slow source
// keeps the loop alive).  Purely an optimization — results are identical
// with and without the skip (tests/test_all_sources_done_columns.cpp).
struct AllSourcesResult {
  std::vector<FloodResult> per_source;
  std::uint64_t max_rounds = 0;   // F(G) on this realization (see above)
  std::uint64_t min_rounds = 0;
  std::size_t completed_count = 0;
  bool all_completed = false;
};
AllSourcesResult flood_all_sources(DynamicGraph& graph,
                                   std::uint64_t max_rounds,
                                   std::size_t threads = 1);

}  // namespace megflood
