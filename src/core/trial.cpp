#include "core/trial.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "util/rng.hpp"

namespace megflood {

namespace {

// Everything one trial contributes to the measurement; computed
// independently per trial so workers never share mutable state.
struct TrialOutcome {
  bool completed = false;
  double rounds = 0.0;
  double spreading = 0.0;
  double saturation = 0.0;
};

TrialOutcome run_one(DynamicGraph& graph, std::size_t trial,
                     const TrialConfig& config) {
  for (std::uint64_t w = 0; w < config.warmup_steps; ++w) graph.step();
  const auto source = static_cast<NodeId>(
      config.rotate_sources ? trial % graph.num_nodes() : 0);
  const FloodResult result = flood(graph, source, config.max_rounds);
  TrialOutcome out;
  out.completed = result.completed;
  if (result.completed) {
    out.rounds = static_cast<double>(result.rounds);
    const PhaseSplit phases = split_phases(result, graph.num_nodes());
    out.spreading = static_cast<double>(phases.spreading_rounds);
    out.saturation = static_cast<double>(phases.saturation_rounds);
  }
  return out;
}

// Deterministic merge: outcomes are folded in trial-index order, so the
// measurement does not depend on the order trials finished in.
FloodingMeasurement merge_outcomes(const std::vector<TrialOutcome>& outcomes) {
  std::vector<double> rounds, spreading, saturation;
  std::size_t incomplete = 0;
  for (const TrialOutcome& out : outcomes) {
    if (!out.completed) {
      ++incomplete;
      continue;
    }
    rounds.push_back(out.rounds);
    spreading.push_back(out.spreading);
    saturation.push_back(out.saturation);
  }
  FloodingMeasurement m;
  m.rounds = summarize(std::move(rounds));
  m.spreading_rounds = summarize(std::move(spreading));
  m.saturation_rounds = summarize(std::move(saturation));
  m.incomplete = incomplete;
  return m;
}

std::size_t resolve_threads(std::size_t requested, std::size_t trials) {
  if (requested == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    requested = hw > 0 ? hw : 1;
  }
  return std::min(requested, trials);
}

}  // namespace

FloodingMeasurement measure_flooding(
    const std::function<std::unique_ptr<DynamicGraph>(std::uint64_t)>& factory,
    const TrialConfig& config) {
  if (config.trials == 0) {
    throw std::invalid_argument("measure_flooding: trials must be > 0");
  }
  const auto seeds = derive_seeds(config.seed, config.trials);
  std::vector<TrialOutcome> outcomes(config.trials);
  const std::size_t threads = resolve_threads(config.threads, config.trials);
  if (threads <= 1) {
    for (std::size_t trial = 0; trial < config.trials; ++trial) {
      const std::unique_ptr<DynamicGraph> graph = factory(seeds[trial]);
      outcomes[trial] = run_one(*graph, trial, config);
    }
  } else {
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::mutex error_mutex;
    std::exception_ptr first_error;
    auto worker = [&] {
      while (!failed.load(std::memory_order_relaxed)) {
        const std::size_t trial = next.fetch_add(1);
        if (trial >= config.trials) break;
        try {
          const std::unique_ptr<DynamicGraph> graph = factory(seeds[trial]);
          outcomes[trial] = run_one(*graph, trial, config);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
        }
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
    if (first_error) std::rethrow_exception(first_error);
  }
  return merge_outcomes(outcomes);
}

FloodingMeasurement measure_flooding_reusing(DynamicGraph& graph,
                                             const TrialConfig& config) {
  if (config.trials == 0) {
    throw std::invalid_argument("measure_flooding: trials must be > 0");
  }
  const auto seeds = derive_seeds(config.seed, config.trials);
  std::vector<TrialOutcome> outcomes(config.trials);
  for (std::size_t trial = 0; trial < config.trials; ++trial) {
    graph.reset(seeds[trial]);
    outcomes[trial] = run_one(graph, trial, config);
  }
  return merge_outcomes(outcomes);
}

}  // namespace megflood
