#include "core/trial.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "util/rng.hpp"

namespace megflood {

namespace {

// Salt separating the per-trial process-RNG seed stream from the graph
// seed stream; any fixed constant works, it only has to be deterministic.
constexpr std::uint64_t kProcessSeedSalt = 0x9d2c5680a76f4e1bULL;

using WatchdogClock = SpreadingProcess::WatchdogClock;
using Deadline = std::optional<WatchdogClock::time_point>;

// How each trial slot ended.  kNotRun survives to the merge only when
// cancellation stopped the campaign before the trial was claimed.
enum class SlotState : unsigned char { kNotRun, kDone, kError };

struct Slot {
  SlotState state = SlotState::kNotRun;
  TrialOutcome out;
  TrialError err;
};

Deadline trial_deadline(const TrialConfig& config) {
  if (config.trial_deadline_s <= 0.0) return std::nullopt;
  return WatchdogClock::now() +
         std::chrono::duration_cast<WatchdogClock::duration>(
             std::chrono::duration<double>(config.trial_deadline_s));
}

[[noreturn]] void deadline_exceeded(const char* where) {
  throw TrialDeadlineExceeded(std::string("trial exceeded its watchdog "
                                          "deadline (") +
                              where + ")");
}

TrialOutcome run_one(DynamicGraph& graph, SpreadingProcess& process,
                     std::size_t trial, std::uint64_t process_seed,
                     const TrialConfig& config, const Deadline& deadline) {
  for (std::uint64_t w = 0; w < config.warmup_steps; ++w) {
    // One clock read per 1024 steps keeps the watchdog off the warmup
    // hot path while still bounding a stalled warmup.
    if (deadline && (w & 1023u) == 1023u &&
        WatchdogClock::now() > *deadline) {
      deadline_exceeded("warmup");
    }
    graph.step();
  }
  const auto source = static_cast<NodeId>(
      config.rotate_sources ? trial % graph.num_nodes() : 0);
  process.arm_deadline(deadline);
  ProcessResult result =
      run_process(graph, process, source, config.max_rounds, process_seed);
  if (deadline && WatchdogClock::now() > *deadline) {
    deadline_exceeded("post-trial check");
  }
  TrialOutcome out;
  out.completed = result.flood.completed;
  if (result.flood.completed) {
    out.rounds = static_cast<double>(result.flood.rounds);
    const PhaseSplit phases = split_phases(result.flood, graph.num_nodes());
    out.spreading = static_cast<double>(phases.spreading_rounds);
    out.saturation = static_cast<double>(phases.saturation_rounds);
    out.metrics = std::move(result.metrics);
  }
  return out;
}

// Deterministic merge: slots are folded in trial-index order, so the
// measurement does not depend on the order trials finished in — nor on
// whether an outcome was computed now or replayed from a checkpoint.
Measurement merge_slots(std::vector<Slot>& slots, std::size_t resumed) {
  std::vector<double> rounds, spreading, saturation;
  std::map<std::string, std::vector<double>> metric_samples;
  Measurement m;
  for (Slot& slot : slots) {
    switch (slot.state) {
      case SlotState::kNotRun:
        ++m.not_run;
        continue;
      case SlotState::kError:
        m.errors.push_back(std::move(slot.err));
        continue;
      case SlotState::kDone:
        break;
    }
    if (!slot.out.completed) {
      ++m.incomplete;
      continue;
    }
    rounds.push_back(slot.out.rounds);
    spreading.push_back(slot.out.spreading);
    saturation.push_back(slot.out.saturation);
    for (const auto& [name, value] : slot.out.metrics) {
      metric_samples[name].push_back(value);
    }
  }
  m.rounds = summarize(std::move(rounds));
  m.spreading_rounds = summarize(std::move(spreading));
  m.saturation_rounds = summarize(std::move(saturation));
  for (auto& [name, samples] : metric_samples) {
    m.metrics[name] = summarize(std::move(samples));
  }
  m.interrupted = m.not_run > 0;
  m.resumed = resumed;
  return m;
}

std::size_t resolve_threads(std::size_t requested, std::size_t trials) {
  if (requested == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    requested = hw > 0 ? hw : 1;
  }
  return std::min(requested, trials);
}

void check_config(const TrialConfig& config) {
  if (config.trials == 0) {
    throw std::invalid_argument("measure: trials must be > 0");
  }
}

// Shared per-trial body of the sequential and threaded paths: hooks,
// factories, the run, error containment, and the durable record.  Throws
// only when the error is not contained.
class TrialExecutor {
 public:
  TrialExecutor(const GraphFactory& graph_factory,
                const ProcessFactory& process_factory,
                const TrialConfig& config, const MeasureHooks& hooks,
                const std::vector<std::uint64_t>& graph_seeds,
                const std::vector<std::uint64_t>& process_seeds)
      : graph_factory_(graph_factory),
        process_factory_(process_factory),
        config_(config),
        hooks_(hooks),
        graph_seeds_(graph_seeds),
        process_seeds_(process_seeds) {}

  void execute(std::size_t trial, Slot& slot) {
    const Deadline deadline = trial_deadline(config_);
    try {
      if (hooks_.on_trial_start) hooks_.on_trial_start(trial);
      const std::unique_ptr<DynamicGraph> graph =
          graph_factory_(graph_seeds_[trial]);
      const std::unique_ptr<SpreadingProcess> process = process_factory_();
      slot.out = run_one(*graph, *process, trial, process_seeds_[trial],
                         config_, deadline);
      slot.state = SlotState::kDone;
    } catch (const std::exception& error) {
      if (!config_.contain_errors) throw;
      slot.state = SlotState::kError;
      slot.err = TrialError{trial, graph_seeds_[trial], process_seeds_[trial],
                            error.what()};
    } catch (...) {
      if (!config_.contain_errors) throw;
      slot.state = SlotState::kError;
      slot.err = TrialError{trial, graph_seeds_[trial], process_seeds_[trial],
                            "unknown exception"};
    }
    // The record and the post-record hook share one lock so "after the
    // K-th durable record" fault sites see a well-defined count even
    // with concurrent workers.
    const std::lock_guard<std::mutex> lock(record_mutex_);
    if (slot.state == SlotState::kError) {
      if (hooks_.checkpoint) hooks_.checkpoint->record_error(slot.err);
      return;
    }
    if (hooks_.checkpoint) hooks_.checkpoint->record(trial, slot.out);
    if (hooks_.on_trial_recorded) hooks_.on_trial_recorded(trial);
  }

 private:
  const GraphFactory& graph_factory_;
  const ProcessFactory& process_factory_;
  const TrialConfig& config_;
  const MeasureHooks& hooks_;
  const std::vector<std::uint64_t>& graph_seeds_;
  const std::vector<std::uint64_t>& process_seeds_;
  std::mutex record_mutex_;
};

}  // namespace

Measurement measure(const GraphFactory& graph_factory,
                    const ProcessFactory& process_factory,
                    const TrialConfig& config, const MeasureHooks& hooks) {
  check_config(config);
  // Two decorrelated streams from one root seed: graph seeds keep the
  // exact derivation measure_flooding has always used, process-RNG seeds
  // come from a salted stream (so protocol randomness never aliases model
  // randomness, and every trial stays a pure function of config.seed and
  // its index).
  const auto graph_seeds = derive_seeds(config.seed, config.trials);
  const auto process_seeds =
      derive_seeds(config.seed ^ kProcessSeedSalt, config.trials);
  std::vector<Slot> slots(config.trials);
  // Resume: trials the journal already holds are replayed bit-for-bit and
  // never re-run (their slot is Done before any worker starts).
  std::size_t resumed = 0;
  if (hooks.checkpoint) {
    for (std::size_t trial = 0; trial < config.trials; ++trial) {
      if (const TrialOutcome* out = hooks.checkpoint->find(trial)) {
        slots[trial].out = *out;
        slots[trial].state = SlotState::kDone;
        ++resumed;
      }
    }
  }
  const auto cancelled = [&hooks] {
    return hooks.cancel && hooks.cancel->load(std::memory_order_relaxed);
  };
  TrialExecutor executor(graph_factory, process_factory, config, hooks,
                         graph_seeds, process_seeds);
  const std::size_t threads = resolve_threads(config.threads, config.trials);
  if (threads <= 1) {
    for (std::size_t trial = 0; trial < config.trials; ++trial) {
      if (slots[trial].state == SlotState::kDone) continue;  // resumed
      if (cancelled()) break;
      executor.execute(trial, slots[trial]);
    }
  } else {
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::mutex error_mutex;
    std::exception_ptr first_error;
    auto worker = [&] {
      while (!failed.load(std::memory_order_relaxed) && !cancelled()) {
        const std::size_t trial = next.fetch_add(1);
        if (trial >= config.trials) break;
        if (slots[trial].state == SlotState::kDone) continue;  // resumed
        try {
          executor.execute(trial, slots[trial]);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
        }
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
    if (first_error) std::rethrow_exception(first_error);
  }
  return merge_slots(slots, resumed);
}

Measurement measure_reusing(DynamicGraph& graph,
                            const ProcessFactory& process_factory,
                            const TrialConfig& config) {
  check_config(config);
  const auto graph_seeds = derive_seeds(config.seed, config.trials);
  const auto process_seeds =
      derive_seeds(config.seed ^ kProcessSeedSalt, config.trials);
  const std::unique_ptr<SpreadingProcess> process = process_factory();
  std::vector<Slot> slots(config.trials);
  for (std::size_t trial = 0; trial < config.trials; ++trial) {
    graph.reset(graph_seeds[trial]);
    slots[trial].out = run_one(graph, *process, trial, process_seeds[trial],
                               config, trial_deadline(config));
    slots[trial].state = SlotState::kDone;
  }
  return merge_slots(slots, 0);
}

FloodingMeasurement measure_flooding(const GraphFactory& factory,
                                     const TrialConfig& config) {
  return measure(
      factory, [] { return std::make_unique<FloodingProcess>(); }, config);
}

FloodingMeasurement measure_flooding_reusing(DynamicGraph& graph,
                                             const TrialConfig& config) {
  return measure_reusing(
      graph, [] { return std::make_unique<FloodingProcess>(); }, config);
}

}  // namespace megflood
