#include "core/trial.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "util/rng.hpp"

namespace megflood {

namespace {

// Salt separating the per-trial process-RNG seed stream from the graph
// seed stream; any fixed constant works, it only has to be deterministic.
constexpr std::uint64_t kProcessSeedSalt = 0x9d2c5680a76f4e1bULL;

// Everything one trial contributes to the measurement; computed
// independently per trial so workers never share mutable state.
struct TrialOutcome {
  bool completed = false;
  double rounds = 0.0;
  double spreading = 0.0;
  double saturation = 0.0;
  MetricsBag metrics;
};

TrialOutcome run_one(DynamicGraph& graph, SpreadingProcess& process,
                     std::size_t trial, std::uint64_t process_seed,
                     const TrialConfig& config) {
  for (std::uint64_t w = 0; w < config.warmup_steps; ++w) graph.step();
  const auto source = static_cast<NodeId>(
      config.rotate_sources ? trial % graph.num_nodes() : 0);
  ProcessResult result =
      run_process(graph, process, source, config.max_rounds, process_seed);
  TrialOutcome out;
  out.completed = result.flood.completed;
  if (result.flood.completed) {
    out.rounds = static_cast<double>(result.flood.rounds);
    const PhaseSplit phases = split_phases(result.flood, graph.num_nodes());
    out.spreading = static_cast<double>(phases.spreading_rounds);
    out.saturation = static_cast<double>(phases.saturation_rounds);
    out.metrics = std::move(result.metrics);
  }
  return out;
}

// Deterministic merge: outcomes are folded in trial-index order, so the
// measurement does not depend on the order trials finished in.
Measurement merge_outcomes(std::vector<TrialOutcome>& outcomes) {
  std::vector<double> rounds, spreading, saturation;
  std::map<std::string, std::vector<double>> metric_samples;
  std::size_t incomplete = 0;
  for (TrialOutcome& out : outcomes) {
    if (!out.completed) {
      ++incomplete;
      continue;
    }
    rounds.push_back(out.rounds);
    spreading.push_back(out.spreading);
    saturation.push_back(out.saturation);
    for (const auto& [name, value] : out.metrics) {
      metric_samples[name].push_back(value);
    }
  }
  Measurement m;
  m.rounds = summarize(std::move(rounds));
  m.spreading_rounds = summarize(std::move(spreading));
  m.saturation_rounds = summarize(std::move(saturation));
  for (auto& [name, samples] : metric_samples) {
    m.metrics[name] = summarize(std::move(samples));
  }
  m.incomplete = incomplete;
  return m;
}

std::size_t resolve_threads(std::size_t requested, std::size_t trials) {
  if (requested == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    requested = hw > 0 ? hw : 1;
  }
  return std::min(requested, trials);
}

void check_config(const TrialConfig& config) {
  if (config.trials == 0) {
    throw std::invalid_argument("measure: trials must be > 0");
  }
}

}  // namespace

Measurement measure(const GraphFactory& graph_factory,
                    const ProcessFactory& process_factory,
                    const TrialConfig& config) {
  check_config(config);
  // Two decorrelated streams from one root seed: graph seeds keep the
  // exact derivation measure_flooding has always used, process-RNG seeds
  // come from a salted stream (so protocol randomness never aliases model
  // randomness, and every trial stays a pure function of config.seed and
  // its index).
  const auto graph_seeds = derive_seeds(config.seed, config.trials);
  const auto process_seeds =
      derive_seeds(config.seed ^ kProcessSeedSalt, config.trials);
  std::vector<TrialOutcome> outcomes(config.trials);
  const std::size_t threads = resolve_threads(config.threads, config.trials);
  if (threads <= 1) {
    for (std::size_t trial = 0; trial < config.trials; ++trial) {
      const std::unique_ptr<DynamicGraph> graph = graph_factory(graph_seeds[trial]);
      const std::unique_ptr<SpreadingProcess> process = process_factory();
      outcomes[trial] =
          run_one(*graph, *process, trial, process_seeds[trial], config);
    }
  } else {
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::mutex error_mutex;
    std::exception_ptr first_error;
    auto worker = [&] {
      while (!failed.load(std::memory_order_relaxed)) {
        const std::size_t trial = next.fetch_add(1);
        if (trial >= config.trials) break;
        try {
          const std::unique_ptr<DynamicGraph> graph =
              graph_factory(graph_seeds[trial]);
          const std::unique_ptr<SpreadingProcess> process = process_factory();
          outcomes[trial] =
              run_one(*graph, *process, trial, process_seeds[trial], config);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
        }
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
    if (first_error) std::rethrow_exception(first_error);
  }
  return merge_outcomes(outcomes);
}

Measurement measure_reusing(DynamicGraph& graph,
                            const ProcessFactory& process_factory,
                            const TrialConfig& config) {
  check_config(config);
  const auto graph_seeds = derive_seeds(config.seed, config.trials);
  const auto process_seeds =
      derive_seeds(config.seed ^ kProcessSeedSalt, config.trials);
  const std::unique_ptr<SpreadingProcess> process = process_factory();
  std::vector<TrialOutcome> outcomes(config.trials);
  for (std::size_t trial = 0; trial < config.trials; ++trial) {
    graph.reset(graph_seeds[trial]);
    outcomes[trial] =
        run_one(graph, *process, trial, process_seeds[trial], config);
  }
  return merge_outcomes(outcomes);
}

FloodingMeasurement measure_flooding(const GraphFactory& factory,
                                     const TrialConfig& config) {
  return measure(
      factory, [] { return std::make_unique<FloodingProcess>(); }, config);
}

FloodingMeasurement measure_flooding_reusing(DynamicGraph& graph,
                                             const TrialConfig& config) {
  return measure_reusing(
      graph, [] { return std::make_unique<FloodingProcess>(); }, config);
}

}  // namespace megflood
