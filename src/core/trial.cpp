#include "core/trial.hpp"

#include <memory>

#include "util/rng.hpp"

namespace megflood {

namespace {

FloodingMeasurement run_trials(
    const std::function<DynamicGraph&(std::uint64_t)>& acquire,
    const TrialConfig& config) {
  if (config.trials == 0) {
    throw std::invalid_argument("measure_flooding: trials must be > 0");
  }
  std::vector<double> rounds, spreading, saturation;
  std::size_t incomplete = 0;
  const auto seeds = derive_seeds(config.seed, config.trials);
  for (std::size_t trial = 0; trial < config.trials; ++trial) {
    DynamicGraph& graph = acquire(seeds[trial]);
    for (std::uint64_t w = 0; w < config.warmup_steps; ++w) graph.step();
    const auto source = static_cast<NodeId>(
        config.rotate_sources ? trial % graph.num_nodes() : 0);
    const FloodResult result = flood(graph, source, config.max_rounds);
    if (!result.completed) {
      ++incomplete;
      continue;
    }
    rounds.push_back(static_cast<double>(result.rounds));
    const PhaseSplit phases = split_phases(result, graph.num_nodes());
    spreading.push_back(static_cast<double>(phases.spreading_rounds));
    saturation.push_back(static_cast<double>(phases.saturation_rounds));
  }
  FloodingMeasurement m;
  m.rounds = summarize(std::move(rounds));
  m.spreading_rounds = summarize(std::move(spreading));
  m.saturation_rounds = summarize(std::move(saturation));
  m.incomplete = incomplete;
  return m;
}

}  // namespace

FloodingMeasurement measure_flooding(
    const std::function<std::unique_ptr<DynamicGraph>(std::uint64_t)>& factory,
    const TrialConfig& config) {
  std::unique_ptr<DynamicGraph> current;
  return run_trials(
      [&](std::uint64_t seed) -> DynamicGraph& {
        current = factory(seed);
        return *current;
      },
      config);
}

FloodingMeasurement measure_flooding_reusing(DynamicGraph& graph,
                                             const TrialConfig& config) {
  return run_trials(
      [&](std::uint64_t seed) -> DynamicGraph& {
        graph.reset(seed);
        return graph;
      },
      config);
}

}  // namespace megflood
