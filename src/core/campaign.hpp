#pragma once

// The canonical campaign identity — ONE tree-wide definition of "the same
// experiment" (ISSUE 8).  A campaign is the canonical scenario CLI
// (core/scenario.hpp scenario_to_cli) plus the explicit seed and trial
// count; two runs with equal CampaignKeys produce bit-identical
// measurements, which is what makes the key safe to use both as the
// checkpoint journal's header binding (core/checkpoint.hpp) and as the
// serve layer's result-cache key (serve/cache.hpp).
//
// The seed and trials fields are redundant with the CLI string (the
// canonical CLI always carries --seed and --trials) but are bound
// explicitly so consumers can check them without re-parsing the CLI, and
// so a future CLI-grammar change cannot silently decouple the two.

#include <cstdint>
#include <string>

namespace megflood {

struct ScenarioSpec;

struct CampaignKey {
  std::string scenario_cli;
  std::uint64_t seed = 0;
  std::uint64_t trials = 0;

  bool operator==(const CampaignKey&) const = default;
};

// The identity of `spec`: canonical CLI + seed + trials.
CampaignKey campaign_key(const ScenarioSpec& spec);

// One-line serialization, "megfcamp1|seed=<S>|trials=<T>|<cli>".  The CLI
// is the last field (it contains spaces and arbitrary parameter bytes, but
// never a newline — scenario args are whitespace-split tokens), so the
// string is unambiguous and round-trips through parse_campaign_key.
std::string campaign_key_string(const CampaignKey& key);

// Inverse of campaign_key_string; throws std::invalid_argument on any
// malformed input (wrong tag, non-numeric fields, truncation).
CampaignKey parse_campaign_key(const std::string& text);

// FNV-1a over campaign_key_string(key) — stable across runs and hosts,
// used for cache file names.  Collisions are possible; consumers must
// verify the full key string before trusting a hash match.  The string
// overload hashes an already-serialized key without re-serializing.
std::uint64_t campaign_key_hash(const CampaignKey& key);
std::uint64_t campaign_key_hash(const std::string& key_string);

}  // namespace megflood
