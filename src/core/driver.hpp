#pragma once

// The megflood_run CLI body, extracted into the library so its exit codes
// and emitted bytes are testable in-process (tests/test_driver_cli.cpp)
// instead of only through a subprocess.  tools/megflood_run.cpp is a thin
// main that installs SIGINT/SIGTERM handlers over driver_cancel_flag()
// and forwards argv.
//
// Driver flags on top of the scenario grammar (core/scenario.hpp):
//   --format=table|csv|json   output format (default table)
//   --sweep=key=a:b:step[,key=a:b:step...]
//                             Cartesian sweep: one run per point, one CSV
//                             row per point (first key slowest)
//   --checkpoint=FILE         durable trial journal; re-running with the
//                             same campaign resumes (core/checkpoint.hpp)
//   --inject=SPEC             deterministic fault injection
//                             (util/fault_injection.hpp grammar)
//   --contain=0|1             contain per-trial errors as TrialError rows
//                             (default 1; 0 = first error aborts the run)
//   --deadline=SECONDS        per-trial watchdog deadline (0 = off)
//   --rss_budget_mb=N         soft peak-RSS budget -> warning channel
//
// None of these driver flags enter the canonical scenario CLI
// (scenario_to_cli), so the checkpoint header binds the experiment, not
// the operational wrapping.
//
// Exit-code taxonomy (docs/operations.md):
//   0  every trial ran and at least one completed
//   2  configuration error: bad flag, unknown model/parameter/process,
//      malformed --sweep, checkpoint header mismatch, --checkpoint+--sweep
//   3  stalled: the campaign ran but no trial completed within max_rounds
//      (sweep: some point completed no trial)
//   4  partial: contained trial errors, an interrupted (cancelled) run, or
//      an uncontained runtime failure mid-campaign

#include <atomic>
#include <ostream>
#include <string>
#include <vector>

// SweepSpec / parse_sweep / parse_multi_sweep live in core/sweep.hpp; the
// driver accepts --sweep=key=a:b:step[,key=a:b:step...] (Cartesian
// multi-key, one CSV row per point, duplicate keys = exit 2) and shares
// the expansion code with the serve layer.
#include "core/sweep.hpp"

namespace megflood {

inline constexpr int kExitOk = 0;
inline constexpr int kExitConfigError = 2;
inline constexpr int kExitStalled = 3;
inline constexpr int kExitPartial = 4;

// Cooperative cancellation: the runner stops claiming new trials once
// this flag is true (completed trials are already durable when a
// checkpoint is armed).  The tool main's signal handlers set it; tests
// set it directly.
std::atomic<bool>& driver_cancel_flag();

// Runs the CLI with `args` (argv[1..]); human/machine output goes to
// `out`, diagnostics and warnings to `err`.  Never throws; returns an
// exit code from the taxonomy above.
int run_driver(const std::vector<std::string>& args, std::ostream& out,
               std::ostream& err);

}  // namespace megflood
