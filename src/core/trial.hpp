#pragma once

// Multi-trial measurement harness.  The paper's bounds hold "with high
// probability", so experiments report upper quantiles (p90/p99/max) of the
// flooding time over independent trials, each trial with a fresh model
// seed and (optionally) a rotating source — approximating
// F(G) = max_s F(G, s).

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/dynamic_graph.hpp"
#include "core/flooding.hpp"
#include "util/stats.hpp"

namespace megflood {

struct TrialConfig {
  std::size_t trials = 32;
  std::uint64_t seed = 1;
  std::uint64_t max_rounds = 1'000'000;
  // If true, the source node rotates across trials; otherwise node 0.
  bool rotate_sources = true;
  // Number of warm-up steps to run after reset before flooding starts
  // (lets non-stationary initializations approach stationarity).
  std::uint64_t warmup_steps = 0;
};

struct FloodingMeasurement {
  Summary rounds;                 // over completed trials
  std::size_t incomplete = 0;     // trials that hit max_rounds
  Summary spreading_rounds;       // phase split (completed trials only)
  Summary saturation_rounds;
};

// Runs `config.trials` flooding experiments on the graph produced by
// `factory(seed)`; the factory is called once per trial.
FloodingMeasurement measure_flooding(
    const std::function<std::unique_ptr<DynamicGraph>(std::uint64_t)>& factory,
    const TrialConfig& config);

// Same but reusing one graph instance via reset() — cheaper when model
// construction is expensive (e.g. precomputed hop balls).
FloodingMeasurement measure_flooding_reusing(DynamicGraph& graph,
                                             const TrialConfig& config);

}  // namespace megflood
