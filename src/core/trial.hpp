#pragma once

// Multi-trial measurement harness.  The paper's bounds hold "with high
// probability", so experiments report upper quantiles (p90/p99/max) of the
// flooding time over independent trials, each trial with a fresh model
// seed and (optionally) a rotating source — approximating
// F(G) = max_s F(G, s).

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/dynamic_graph.hpp"
#include "core/flooding.hpp"
#include "util/stats.hpp"

namespace megflood {

struct TrialConfig {
  std::size_t trials = 32;
  std::uint64_t seed = 1;
  std::uint64_t max_rounds = 1'000'000;
  // If true, the source node rotates across trials; otherwise node 0.
  bool rotate_sources = true;
  // Number of warm-up steps to run after reset before flooding starts
  // (lets non-stationary initializations approach stationarity).
  std::uint64_t warmup_steps = 0;
  // Worker threads for measure_flooding: trials are distributed across
  // workers, each constructing its own graph through the factory (the
  // factory must therefore be safe to call concurrently; the stock
  // harness factories, which only read captured parameters, are).  Every
  // trial is a pure function of its derive_seeds() entry and its index,
  // and per-trial outcomes are merged in trial order, so the measurement
  // is bit-identical for every thread count.  0 = one worker per
  // hardware thread.  measure_flooding_reusing shares one graph and
  // always runs sequentially.
  std::size_t threads = 1;
};

struct FloodingMeasurement {
  Summary rounds;                 // over completed trials
  std::size_t incomplete = 0;     // trials that hit max_rounds
  Summary spreading_rounds;       // phase split (completed trials only)
  Summary saturation_rounds;
  // True when not a single trial completed within max_rounds.  Every
  // Summary above is then over zero samples — all fields read 0.0 — and
  // must not be mistaken for "flooding takes 0 rounds"; harness output
  // goes through this predicate before printing round statistics.
  bool all_incomplete() const noexcept { return rounds.count == 0; }
};

// Runs `config.trials` flooding experiments on the graph produced by
// `factory(seed)`; the factory is called once per trial (concurrently
// when config.threads != 1).
FloodingMeasurement measure_flooding(
    const std::function<std::unique_ptr<DynamicGraph>(std::uint64_t)>& factory,
    const TrialConfig& config);

// Same but reusing one graph instance via reset() — cheaper when model
// construction is expensive (e.g. precomputed hop balls).  Always
// sequential (the trials share the graph); config.threads is ignored.
FloodingMeasurement measure_flooding_reusing(DynamicGraph& graph,
                                             const TrialConfig& config);

}  // namespace megflood
