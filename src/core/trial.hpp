#pragma once

// Multi-trial measurement harness.  The paper's bounds hold "with high
// probability", so experiments report upper quantiles (p90/p99/max) of the
// completion time over independent trials, each trial with a fresh model
// seed and (optionally) a rotating source — approximating
// F(G) = max_s F(G, s).
//
// The harness is process-generic: measure() runs any SpreadingProcess
// (flooding, gossip, k-push, radio broadcast, TTL flooding, ...) through
// the same machinery — warmup, rotating sources, derive_seeds per-trial
// seeding, the thread pool, quantile summaries, phase splits,
// incomplete-trial accounting, and per-metric aggregation.
// measure_flooding() is the historical entry point, now a thin wrapper
// over measure() with a FloodingProcess.

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/dynamic_graph.hpp"
#include "core/flooding.hpp"
#include "core/process.hpp"
#include "util/stats.hpp"

namespace megflood {

struct TrialConfig {
  std::size_t trials = 32;
  std::uint64_t seed = 1;
  std::uint64_t max_rounds = 1'000'000;
  // If true, the source node rotates across trials; otherwise node 0.
  bool rotate_sources = true;
  // Number of warm-up steps to run after reset before the process starts
  // (lets non-stationary initializations approach stationarity).
  std::uint64_t warmup_steps = 0;
  // Worker threads for measure: trials are distributed across workers,
  // each constructing its own graph and process through the factories
  // (the factories must therefore be safe to call concurrently; the stock
  // harness factories, which only read captured parameters, are).  Every
  // trial is a pure function of its derive_seeds() entries and its index,
  // and per-trial outcomes are merged in trial order, so the measurement
  // is bit-identical for every thread count.  0 = one worker per
  // hardware thread.  measure_reusing shares one graph and always runs
  // sequentially.
  std::size_t threads = 1;
  // Error containment: when true, a trial that throws (model construction,
  // the process, a fault-injection site, the watchdog) is recorded as a
  // TrialError in the measurement instead of aborting the campaign — the
  // remaining trials still run.  When false (the historical behavior) the
  // first trial exception propagates out of measure().
  bool contain_errors = false;
  // Cooperative per-trial watchdog: a trial whose wall clock (hooks +
  // model construction + warmup + rounds) exceeds this many seconds is
  // reported as a TrialError ("watchdog deadline") rather than being
  // waited on forever.  Checked between warmup batches, once per round in
  // the generic process engine, and when the trial returns; 0 disables.
  // A deadline makes *error* outcomes wall-clock dependent — leave it 0
  // for bit-reproducibility experiments.
  double trial_deadline_s = 0.0;
};

// Everything one completed-or-incomplete trial contributes to the
// measurement; computed independently per trial so workers never share
// mutable state, and exactly what a CheckpointSink journals.
struct TrialOutcome {
  bool completed = false;  // process informed all nodes within max_rounds
  double rounds = 0.0;
  double spreading = 0.0;
  double saturation = 0.0;
  MetricsBag metrics;
};

// A contained trial failure: which trial, the seeds it was dealt (enough
// to replay it in isolation), and the exception text.
struct TrialError {
  std::size_t trial = 0;
  std::uint64_t graph_seed = 0;
  std::uint64_t process_seed = 0;
  std::string what;
};

// Durable-progress interface for measure(): find() returns the journaled
// outcome of a trial completed by an earlier (interrupted) run, record()
// appends a trial's outcome durably *before* the runner counts it as
// done, record_error() journals a contained failure for the post-mortem.
// Implementations must make record()/record_error() safe to call from
// concurrent workers; core/checkpoint.hpp provides the file-backed
// journal, tests use in-memory fakes.
class CheckpointSink {
 public:
  virtual ~CheckpointSink() = default;
  // Outcome of `trial` if durably recorded, nullptr otherwise.  Only read
  // before the workers start, so it need not be thread-safe.
  virtual const TrialOutcome* find(std::size_t trial) const = 0;
  virtual void record(std::size_t trial, const TrialOutcome& outcome) = 0;
  virtual void record_error(const TrialError& /*error*/) {}
};

// Optional wiring for measure(): durable checkpointing, cooperative
// cancellation, and test/fault-injection hooks.  All members are
// optional; a default-constructed MeasureHooks reproduces plain measure().
struct MeasureHooks {
  // Journal of completed trials: trials found in it are replayed (their
  // recorded outcome is merged bit-for-bit, nothing re-runs), all others
  // are recorded as they finish.  Because every trial is a pure function
  // of config.seed and its index and outcomes merge in trial order, an
  // interrupted-then-resumed campaign is bit-identical to an
  // uninterrupted one.
  CheckpointSink* checkpoint = nullptr;
  // Graceful shutdown: when the pointee becomes true, workers stop
  // claiming new trials; trials already running finish and are recorded.
  // The returned measurement has interrupted = true and counts the
  // never-started trials in not_run.
  const std::atomic<bool>* cancel = nullptr;
  // Called at the start of every freshly-run trial (not for checkpoint
  // replays) and after a trial's outcome is durably recorded.  Both must
  // be safe to call concurrently; on_trial_start may throw to inject a
  // trial failure (util/fault_injection.hpp).
  std::function<void(std::size_t trial)> on_trial_start;
  std::function<void(std::size_t trial)> on_trial_recorded;
};

struct Measurement {
  Summary rounds;                 // over completed trials
  std::size_t incomplete = 0;     // trials that hit max_rounds (or died out)
  Summary spreading_rounds;       // phase split (completed trials only)
  Summary saturation_rounds;
  // Process metrics aggregated over completed trials, keyed by the metric
  // name the process exports (e.g. gossip "contacts", k-push
  // "transmissions", radio "collisions").
  std::map<std::string, Summary> metrics;
  // Contained trial failures (TrialConfig::contain_errors), in trial
  // order.  Errored trials contribute to no Summary — they are neither
  // completed nor "incomplete" (which means "ran to max_rounds").
  std::vector<TrialError> errors;
  // Trials never attempted because cancellation was requested
  // (MeasureHooks::cancel) before they were claimed.
  std::size_t not_run = 0;
  bool interrupted = false;
  // Trials whose outcome was replayed from the checkpoint journal
  // instead of re-run.
  std::size_t resumed = 0;
  // True when not a single trial completed within max_rounds.  Every
  // Summary above is then over zero samples — all fields read 0.0 — and
  // must not be mistaken for "completion takes 0 rounds"; harness output
  // goes through this predicate before printing round statistics.
  bool all_incomplete() const noexcept { return rounds.count == 0; }
};

// The historical flooding-only measurement is the same struct: a
// Measurement whose only metric is FloodingProcess's "transmissions".
using FloodingMeasurement = Measurement;

using GraphFactory =
    std::function<std::unique_ptr<DynamicGraph>(std::uint64_t)>;
using ProcessFactory = std::function<std::unique_ptr<SpreadingProcess>()>;

// Runs `config.trials` experiments of the process produced by
// `process_factory()` on the graph produced by `graph_factory(seed)`;
// both factories are called once per trial (concurrently when
// config.threads != 1).  Trial t's graph seed and process-RNG seed are
// derived from config.seed via two decorrelated derive_seeds streams.
// `hooks` wires in checkpointing, cancellation and fault injection (see
// MeasureHooks); the default is a plain uninstrumented run.
Measurement measure(const GraphFactory& graph_factory,
                    const ProcessFactory& process_factory,
                    const TrialConfig& config,
                    const MeasureHooks& hooks = {});

// Same but reusing one graph instance via reset() — cheaper when model
// construction is expensive (e.g. precomputed hop balls).  Always
// sequential (the trials share the graph); config.threads is ignored.
Measurement measure_reusing(DynamicGraph& graph,
                            const ProcessFactory& process_factory,
                            const TrialConfig& config);

// Flooding-specialized wrappers (the historical API).
FloodingMeasurement measure_flooding(const GraphFactory& factory,
                                     const TrialConfig& config);
FloodingMeasurement measure_flooding_reusing(DynamicGraph& graph,
                                             const TrialConfig& config);

}  // namespace megflood
