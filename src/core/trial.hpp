#pragma once

// Multi-trial measurement harness.  The paper's bounds hold "with high
// probability", so experiments report upper quantiles (p90/p99/max) of the
// completion time over independent trials, each trial with a fresh model
// seed and (optionally) a rotating source — approximating
// F(G) = max_s F(G, s).
//
// The harness is process-generic: measure() runs any SpreadingProcess
// (flooding, gossip, k-push, radio broadcast, TTL flooding, ...) through
// the same machinery — warmup, rotating sources, derive_seeds per-trial
// seeding, the thread pool, quantile summaries, phase splits,
// incomplete-trial accounting, and per-metric aggregation.
// measure_flooding() is the historical entry point, now a thin wrapper
// over measure() with a FloodingProcess.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/dynamic_graph.hpp"
#include "core/flooding.hpp"
#include "core/process.hpp"
#include "util/stats.hpp"

namespace megflood {

struct TrialConfig {
  std::size_t trials = 32;
  std::uint64_t seed = 1;
  std::uint64_t max_rounds = 1'000'000;
  // If true, the source node rotates across trials; otherwise node 0.
  bool rotate_sources = true;
  // Number of warm-up steps to run after reset before the process starts
  // (lets non-stationary initializations approach stationarity).
  std::uint64_t warmup_steps = 0;
  // Worker threads for measure: trials are distributed across workers,
  // each constructing its own graph and process through the factories
  // (the factories must therefore be safe to call concurrently; the stock
  // harness factories, which only read captured parameters, are).  Every
  // trial is a pure function of its derive_seeds() entries and its index,
  // and per-trial outcomes are merged in trial order, so the measurement
  // is bit-identical for every thread count.  0 = one worker per
  // hardware thread.  measure_reusing shares one graph and always runs
  // sequentially.
  std::size_t threads = 1;
};

struct Measurement {
  Summary rounds;                 // over completed trials
  std::size_t incomplete = 0;     // trials that hit max_rounds (or died out)
  Summary spreading_rounds;       // phase split (completed trials only)
  Summary saturation_rounds;
  // Process metrics aggregated over completed trials, keyed by the metric
  // name the process exports (e.g. gossip "contacts", k-push
  // "transmissions", radio "collisions").
  std::map<std::string, Summary> metrics;
  // True when not a single trial completed within max_rounds.  Every
  // Summary above is then over zero samples — all fields read 0.0 — and
  // must not be mistaken for "completion takes 0 rounds"; harness output
  // goes through this predicate before printing round statistics.
  bool all_incomplete() const noexcept { return rounds.count == 0; }
};

// The historical flooding-only measurement is the same struct: a
// Measurement whose only metric is FloodingProcess's "transmissions".
using FloodingMeasurement = Measurement;

using GraphFactory =
    std::function<std::unique_ptr<DynamicGraph>(std::uint64_t)>;
using ProcessFactory = std::function<std::unique_ptr<SpreadingProcess>()>;

// Runs `config.trials` experiments of the process produced by
// `process_factory()` on the graph produced by `graph_factory(seed)`;
// both factories are called once per trial (concurrently when
// config.threads != 1).  Trial t's graph seed and process-RNG seed are
// derived from config.seed via two decorrelated derive_seeds streams.
Measurement measure(const GraphFactory& graph_factory,
                    const ProcessFactory& process_factory,
                    const TrialConfig& config);

// Same but reusing one graph instance via reset() — cheaper when model
// construction is expensive (e.g. precomputed hop balls).  Always
// sequential (the trials share the graph); config.threads is ignored.
Measurement measure_reusing(DynamicGraph& graph,
                            const ProcessFactory& process_factory,
                            const TrialConfig& config);

// Flooding-specialized wrappers (the historical API).
FloodingMeasurement measure_flooding(const GraphFactory& factory,
                                     const TrialConfig& config);
FloodingMeasurement measure_flooding_reusing(DynamicGraph& graph,
                                             const TrialConfig& config);

}  // namespace megflood
