#include "core/flooding.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace megflood {

std::size_t flood_round(const Snapshot& snapshot, std::vector<char>& informed,
                        std::vector<NodeId>& frontier) {
  // The flooding rule informs every node adjacent to *any* informed node,
  // but a node interior to the informed set (all neighbors informed) can
  // never inform anyone new; scanning only the informed set is exact and
  // keeping a frontier would not be (edges change every step, so old
  // informed nodes can meet new neighbors).  We scan all informed nodes.
  std::size_t newly = 0;
  frontier.clear();
  for (NodeId u = 0; u < informed.size(); ++u) {
    if (informed[u] != 1) continue;  // skip uninformed and new-this-round
    for (NodeId v : snapshot.neighbors(u)) {
      if (!informed[v]) {
        informed[v] = 2;  // mark as "new this round" to avoid chaining
        frontier.push_back(v);
        ++newly;
      }
    }
  }
  // Commit: nodes informed this round become plain informed.  (Within a
  // single synchronous round, information must not chain across multiple
  // hops; the mark-then-commit protocol above enforces exactly
  // I_{t+1} = I_t ∪ N(I_t).)
  for (NodeId v : frontier) informed[v] = 1;
  return newly;
}

FloodResult flood(DynamicGraph& graph, NodeId source, std::uint64_t max_rounds) {
  const std::size_t n = graph.num_nodes();
  if (source >= n) throw std::out_of_range("flood: source out of range");

  FloodResult result;
  std::vector<char> informed(n, 0);
  informed[source] = 1;
  std::size_t informed_count = 1;
  result.informed_counts.push_back(informed_count);

  if (informed_count == n) {  // n == 1
    result.completed = true;
    result.rounds = 0;
    return result;
  }

  std::vector<NodeId> scratch;
  for (std::uint64_t t = 0; t < max_rounds; ++t) {
    informed_count += flood_round(graph.snapshot(), informed, scratch);
    result.informed_counts.push_back(informed_count);
    graph.step();
    if (informed_count == n) {
      result.completed = true;
      result.rounds = t + 1;
      return result;
    }
  }
  result.completed = false;
  result.rounds = max_rounds;
  return result;
}

AllSourcesResult flood_all_sources(DynamicGraph& graph,
                                   std::uint64_t max_rounds) {
  const std::size_t n = graph.num_nodes();
  // All n floods run interleaved against the same live snapshot stream,
  // so every source sees the same realization (the definition of F(G))
  // without materializing the trace: O(n^2) state, O(n (V + E)) per step.
  AllSourcesResult all;
  all.per_source.resize(n);
  std::vector<std::vector<char>> informed(n, std::vector<char>(n, 0));
  std::vector<std::size_t> counts(n, 1);
  std::vector<char> done(n, 0);
  std::size_t remaining = n;
  for (NodeId s = 0; s < n; ++s) {
    informed[s][s] = 1;
    all.per_source[s].informed_counts.push_back(1);
    if (n == 1) {
      all.per_source[s].completed = true;
      done[s] = 1;
      --remaining;
    }
  }
  std::vector<NodeId> scratch;
  for (std::uint64_t t = 0; t < max_rounds && remaining > 0; ++t) {
    const Snapshot& snap = graph.snapshot();
    for (NodeId s = 0; s < n; ++s) {
      if (done[s]) continue;
      counts[s] += flood_round(snap, informed[s], scratch);
      all.per_source[s].informed_counts.push_back(counts[s]);
      if (counts[s] == n) {
        all.per_source[s].completed = true;
        all.per_source[s].rounds = t + 1;
        done[s] = 1;
        --remaining;
      }
    }
    graph.step();
  }
  all.all_completed = true;
  all.min_rounds = max_rounds;
  for (NodeId s = 0; s < n; ++s) {
    if (!done[s]) {
      all.per_source[s].completed = false;
      all.per_source[s].rounds = max_rounds;
    }
    all.all_completed = all.all_completed && all.per_source[s].completed;
    all.max_rounds = std::max(all.max_rounds, all.per_source[s].rounds);
    all.min_rounds = std::min(all.min_rounds, all.per_source[s].rounds);
  }
  return all;
}

PhaseSplit split_phases(const FloodResult& result, std::size_t num_nodes) {
  PhaseSplit split;
  if (!result.completed) return split;
  const std::size_t half = (num_nodes + 1) / 2;
  std::uint64_t first_half_time = result.rounds;
  for (std::size_t t = 0; t < result.informed_counts.size(); ++t) {
    if (result.informed_counts[t] >= half) {
      first_half_time = t;
      break;
    }
  }
  split.spreading_rounds = first_half_time;
  split.saturation_rounds = result.rounds - first_half_time;
  return split;
}

}  // namespace megflood
