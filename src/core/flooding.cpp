#include "core/flooding.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/bitwords.hpp"

namespace megflood {

std::size_t flood_round(const Snapshot& snapshot, std::vector<char>& informed,
                        std::vector<NodeId>& frontier) {
  // The flooding rule informs every node adjacent to *any* informed node,
  // but a node interior to the informed set (all neighbors informed) can
  // never inform anyone new; scanning only the informed set is exact and
  // keeping a frontier would not be (edges change every step, so old
  // informed nodes can meet new neighbors).  We scan all informed nodes.
  std::size_t newly = 0;
  frontier.clear();
  const auto [offsets, adjacency] = snapshot.csr();
  for (NodeId u = 0; u < informed.size(); ++u) {
    if (informed[u] != 1) continue;  // skip uninformed and new-this-round
    // Row bounds are hoisted into locals: the char stores into `informed`
    // may alias the uint32 offset array as far as the compiler knows, and
    // would otherwise force a reload of offsets[u + 1] per neighbor.
    const NodeId* row = adjacency + offsets[u];
    const NodeId* const row_end = adjacency + offsets[u + 1];
    for (; row != row_end; ++row) {
      const NodeId v = *row;
      if (!informed[v]) {
        informed[v] = 2;  // mark as "new this round" to avoid chaining
        frontier.push_back(v);
        ++newly;
      }
    }
  }
  // Commit: nodes informed this round become plain informed.  (Within a
  // single synchronous round, information must not chain across multiple
  // hops; the mark-then-commit protocol above enforces exactly
  // I_{t+1} = I_t ∪ N(I_t).)
  for (NodeId v : frontier) informed[v] = 1;
  return newly;
}

std::size_t flood_round_words(const Snapshot& snapshot,
                              const std::uint64_t* cur, std::uint64_t* next,
                              std::size_t num_nodes) {
  // Reading from `cur` while writing `next` enforces the synchronous
  // no-chaining rule without per-node marks.
  const std::size_t words = bit_words(num_nodes);
  const std::size_t before = popcount_words(next, words);
  const auto [offsets, adjacency] = snapshot.csr();
  for_each_set_bit(cur, words, [&](std::size_t u) {
    const NodeId* row = adjacency + offsets[u];
    const NodeId* const row_end = adjacency + offsets[u + 1];
    for (; row != row_end; ++row) set_bit(next, *row);
  });
  return popcount_words(next, words) - before;
}

FloodResult flood(DynamicGraph& graph, NodeId source, std::uint64_t max_rounds) {
  const std::size_t n = graph.num_nodes();
  if (source >= n) throw std::out_of_range("flood: source out of range");

  FloodResult result;
  const std::size_t words = bit_words(n);
  std::vector<std::uint64_t> cur(words, 0), next(words, 0);
  set_bit(cur.data(), source);
  std::size_t informed_count = 1;
  result.informed_counts.push_back(informed_count);

  if (informed_count == n) {  // n == 1
    result.completed = true;
    result.rounds = 0;
    return result;
  }

  for (std::uint64_t t = 0; t < max_rounds; ++t) {
    next = cur;
    informed_count +=
        flood_round_words(graph.snapshot(), cur.data(), next.data(), n);
    std::swap(cur, next);
    result.informed_counts.push_back(informed_count);
    graph.step();
    if (informed_count == n) {
      result.completed = true;
      result.rounds = t + 1;
      return result;
    }
  }
  result.completed = false;
  result.rounds = max_rounds;
  return result;
}

AllSourcesResult flood_all_sources(DynamicGraph& graph,
                                   std::uint64_t max_rounds) {
  const std::size_t n = graph.num_nodes();
  // All n floods run interleaved against the same live snapshot stream, so
  // every source sees the same realization (the definition of F(G)).
  // State is the n x n reachability matrix, transposed into bit-rows:
  // row[v] bit s  <=>  source s has informed node v.  One snapshot edge
  // {u, v} advances every source at once via row[v] |= row[u] and
  // row[u] |= row[v] on word-packed rows; per-source counters are updated
  // from the newly-set bits (each of the <= n^2 (source, node) pairs turns
  // on exactly once over the whole run, so delta extraction amortizes).
  AllSourcesResult all;
  all.per_source.resize(n);
  const std::size_t words = bit_words(n);
  std::vector<std::uint64_t> cur(n * words, 0);
  std::vector<std::uint64_t> next(n * words, 0);
  std::vector<std::size_t> counts(n, 1);
  std::vector<char> done(n, 0);
  std::size_t remaining = n;
  for (NodeId s = 0; s < n; ++s) {
    set_bit(cur.data() + s * words, s);  // source s starts informed at s
    all.per_source[s].informed_counts.push_back(1);
    if (n == 1) {
      all.per_source[s].completed = true;
      done[s] = 1;
      --remaining;
    }
  }
  for (std::uint64_t t = 0; t < max_rounds && remaining > 0; ++t) {
    const Snapshot& snap = graph.snapshot();
    next = cur;
    for (const auto& [u, v] : snap.edge_buffer()) {
      std::uint64_t* next_u = next.data() + std::size_t{u} * words;
      std::uint64_t* next_v = next.data() + std::size_t{v} * words;
      const std::uint64_t* cur_u = cur.data() + std::size_t{u} * words;
      const std::uint64_t* cur_v = cur.data() + std::size_t{v} * words;
      for (std::size_t w = 0; w < words; ++w) {
        next_u[w] |= cur_v[w];
        next_v[w] |= cur_u[w];
      }
    }
    for (NodeId v = 0; v < n; ++v) {
      const std::uint64_t* row_cur = cur.data() + std::size_t{v} * words;
      const std::uint64_t* row_next = next.data() + std::size_t{v} * words;
      for (std::size_t w = 0; w < words; ++w) {
        std::uint64_t fresh = row_next[w] & ~row_cur[w];
        while (fresh != 0) {
          const auto b = static_cast<std::size_t>(std::countr_zero(fresh));
          ++counts[w * kBitWordBits + b];
          fresh &= fresh - 1;
        }
      }
    }
    for (NodeId s = 0; s < n; ++s) {
      if (done[s]) continue;
      all.per_source[s].informed_counts.push_back(counts[s]);
      if (counts[s] == n) {
        all.per_source[s].completed = true;
        all.per_source[s].rounds = t + 1;
        done[s] = 1;
        --remaining;
      }
    }
    std::swap(cur, next);
    graph.step();
  }
  all.min_rounds = max_rounds;
  all.max_rounds = 0;
  for (NodeId s = 0; s < n; ++s) {
    if (!done[s]) {
      all.per_source[s].completed = false;
      all.per_source[s].rounds = max_rounds;
    } else {
      ++all.completed_count;
      all.min_rounds = std::min(all.min_rounds, all.per_source[s].rounds);
    }
    all.max_rounds = std::max(all.max_rounds, all.per_source[s].rounds);
  }
  // With zero completed sources min_rounds keeps its max_rounds
  // initialization — the documented budget fallback.
  all.all_completed = all.completed_count == n;
  return all;
}

PhaseSplit split_phases(const FloodResult& result, std::size_t num_nodes) {
  PhaseSplit split;
  if (!result.completed) return split;
  const std::size_t half = (num_nodes + 1) / 2;
  std::uint64_t first_half_time = result.rounds;
  for (std::size_t t = 0; t < result.informed_counts.size(); ++t) {
    if (result.informed_counts[t] >= half) {
      first_half_time = t;
      break;
    }
  }
  split.spreading_rounds = first_half_time;
  split.saturation_rounds = result.rounds - first_half_time;
  return split;
}

}  // namespace megflood
