#include "core/flooding.hpp"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/bitwords.hpp"

namespace megflood {

std::size_t flood_round(const Snapshot& snapshot, std::vector<char>& informed,
                        std::vector<NodeId>& frontier) {
  // The flooding rule informs every node adjacent to *any* informed node,
  // but a node interior to the informed set (all neighbors informed) can
  // never inform anyone new; scanning only the informed set is exact and
  // keeping a frontier would not be (edges change every step, so old
  // informed nodes can meet new neighbors).  We scan all informed nodes.
  std::size_t newly = 0;
  frontier.clear();
  const auto [offsets, adjacency] = snapshot.csr();
  for (NodeId u = 0; u < informed.size(); ++u) {
    if (informed[u] != 1) continue;  // skip uninformed and new-this-round
    // Row bounds are hoisted into locals: the char stores into `informed`
    // may alias the uint32 offset array as far as the compiler knows, and
    // would otherwise force a reload of offsets[u + 1] per neighbor.
    const NodeId* row = adjacency + offsets[u];
    const NodeId* const row_end = adjacency + offsets[u + 1];
    for (; row != row_end; ++row) {
      const NodeId v = *row;
      if (!informed[v]) {
        informed[v] = 2;  // mark as "new this round" to avoid chaining
        frontier.push_back(v);
        ++newly;
      }
    }
  }
  // Commit: nodes informed this round become plain informed.  (Within a
  // single synchronous round, information must not chain across multiple
  // hops; the mark-then-commit protocol above enforces exactly
  // I_{t+1} = I_t ∪ N(I_t).)
  for (NodeId v : frontier) informed[v] = 1;
  return newly;
}

std::size_t flood_round_words(const Snapshot& snapshot,
                              const std::uint64_t* cur, std::uint64_t* next,
                              std::size_t num_nodes) {
  // Reading from `cur` while writing `next` enforces the synchronous
  // no-chaining rule without per-node marks.
  const std::size_t words = bit_words(num_nodes);
  const std::size_t before = popcount_words(next, words);
  const auto [offsets, adjacency] = snapshot.csr();
  for_each_set_bit(cur, words, [&](std::size_t u) {
    const NodeId* row = adjacency + offsets[u];
    const NodeId* const row_end = adjacency + offsets[u + 1];
    for (; row != row_end; ++row) set_bit(next, *row);
  });
  return popcount_words(next, words) - before;
}

FloodResult flood(DynamicGraph& graph, NodeId source, std::uint64_t max_rounds) {
  const std::size_t n = graph.num_nodes();
  if (source >= n) throw std::out_of_range("flood: source out of range");

  FloodResult result;
  const std::size_t words = bit_words(n);
  std::vector<std::uint64_t> cur(words, 0), next(words, 0);
  set_bit(cur.data(), source);
  std::size_t informed_count = 1;
  result.informed_counts.push_back(informed_count);

  if (informed_count == n) {  // n == 1
    result.completed = true;
    result.rounds = 0;
    return result;
  }

  for (std::uint64_t t = 0; t < max_rounds; ++t) {
    next = cur;
    informed_count +=
        flood_round_words(graph.snapshot(), cur.data(), next.data(), n);
    std::swap(cur, next);
    result.informed_counts.push_back(informed_count);
    graph.step();
    if (informed_count == n) {
      result.completed = true;
      result.rounds = t + 1;
      return result;
    }
  }
  result.completed = false;
  result.rounds = max_rounds;
  return result;
}

namespace {

// One all-sources flooding round restricted to the word-column block
// [w_lo, w_hi) — i.e. to sources [64 * w_lo, 64 * w_hi).  Refreshes the
// block of `next` from `cur`, ORs every snapshot edge over the block,
// extracts the fresh bits into the block's per-source counters, and
// advances the per-source results that live in the block.  Returns how
// many of them completed this round.
//
// This is the unit of parallelism: blocks touch disjoint words of every
// row and disjoint counter/result slots, so any partition of [0, words)
// can run concurrently with no shared writes — and since the block
// computation is a pure function of (cur, snapshot), the partition (and
// hence the thread count) cannot change a single bit of the outcome.
std::size_t all_sources_round_block(const Snapshot& snap, std::uint64_t t,
                                    std::size_t n, std::size_t words,
                                    std::size_t w_lo, std::size_t w_hi,
                                    const std::uint64_t* cur,
                                    std::uint64_t* next, std::size_t* counts,
                                    char* done, std::uint32_t* col_active,
                                    std::vector<std::size_t>& active_cols,
                                    std::vector<FloodResult>& per_source) {
  const std::size_t span = w_hi - w_lo;
  for (std::size_t v = 0; v < n; ++v) {
    const std::uint64_t* const row_cur = cur + v * words + w_lo;
    std::copy(row_cur, row_cur + span, next + v * words + w_lo);
  }
  for (const auto& [u, v] : snap.edge_buffer()) {
    or_words(next + std::size_t{u} * words + w_lo,
             cur + std::size_t{v} * words + w_lo, span);
    or_words(next + std::size_t{v} * words + w_lo,
             cur + std::size_t{u} * words + w_lo, span);
  }
  // Delta extraction skips fully-done word columns: a completed source s
  // has counts[s] == n, i.e. bit s is set in every row of cur, so a fresh
  // bit can never appear in its column again — once all (up to) 64
  // sources of a column are done (col_active[w] == 0) the per-bit scan of
  // that word is pure overhead in every remaining round.  The copy and
  // edge-OR passes above stay full-span: they are branchless word ops,
  // and per-word activity checks in the OR loop would cost more than
  // they save.
  active_cols.clear();
  for (std::size_t w = w_lo; w < w_hi; ++w) {
    if (col_active[w] > 0) active_cols.push_back(w);
  }
  if (active_cols.size() == span) {
    for (std::size_t v = 0; v < n; ++v) {
      for_each_fresh_bit(cur + v * words + w_lo, next + v * words + w_lo,
                         span, w_lo * kBitWordBits,
                         [&](std::size_t s) { ++counts[s]; });
    }
  } else {
    for (std::size_t v = 0; v < n; ++v) {
      for (const std::size_t w : active_cols) {
        for_each_fresh_bit(cur + v * words + w, next + v * words + w, 1,
                           w * kBitWordBits,
                           [&](std::size_t s) { ++counts[s]; });
      }
    }
  }
  const std::size_t s_lo = w_lo * kBitWordBits;
  const std::size_t s_hi = std::min(n, w_hi * kBitWordBits);
  std::size_t completed = 0;
  for (std::size_t s = s_lo; s < s_hi; ++s) {
    if (done[s]) continue;
    per_source[s].informed_counts.push_back(counts[s]);
    if (counts[s] == n) {
      per_source[s].completed = true;
      per_source[s].rounds = t + 1;
      done[s] = 1;
      --col_active[s / kBitWordBits];
      ++completed;
    }
  }
  return completed;
}

std::size_t resolve_flood_workers(std::size_t threads, std::size_t words) {
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw > 0 ? hw : 1;
  }
  // One worker per word column at most: a column is the atom of work.
  return std::max<std::size_t>(1, std::min(threads, words));
}

}  // namespace

AllSourcesResult flood_all_sources(DynamicGraph& graph,
                                   std::uint64_t max_rounds,
                                   std::size_t threads) {
  const std::size_t n = graph.num_nodes();
  // All n floods run interleaved against the same live snapshot stream, so
  // every source sees the same realization (the definition of F(G)).
  // State is the n x n reachability matrix, transposed into bit-rows:
  // row[v] bit s  <=>  source s has informed node v.  One snapshot edge
  // {u, v} advances every source at once via row[v] |= row[u] and
  // row[u] |= row[v] on word-packed rows; per-source counters are updated
  // from the newly-set bits (each of the <= n^2 (source, node) pairs turns
  // on exactly once over the whole run, so delta extraction amortizes).
  // Workers split the word columns (see flooding.hpp).
  AllSourcesResult all;
  all.per_source.resize(n);
  const std::size_t words = bit_words(n);
  std::vector<std::uint64_t> cur(n * words, 0);
  std::vector<std::uint64_t> next(n * words, 0);
  std::vector<std::size_t> counts(n, 1);
  std::vector<char> done(n, 0);
  std::size_t remaining = n;
  for (NodeId s = 0; s < n; ++s) {
    set_bit(cur.data() + s * words, s);  // source s starts informed at s
    all.per_source[s].informed_counts.push_back(1);
    if (n == 1) {
      all.per_source[s].completed = true;
      done[s] = 1;
      --remaining;
    }
  }
  // Per word column, the number of its sources still flooding; the delta
  // extraction visits only columns with col_active > 0.  Each block owns
  // its columns' counters, so the threaded path needs no atomics here.
  std::vector<std::uint32_t> col_active(words, 0);
  for (NodeId s = 0; s < n; ++s) {
    if (!done[s]) ++col_active[s / kBitWordBits];
  }
  const std::size_t workers = resolve_flood_workers(threads, words);
  if (workers <= 1) {
    std::vector<std::size_t> active_cols;
    active_cols.reserve(words);
    for (std::uint64_t t = 0; t < max_rounds && remaining > 0; ++t) {
      remaining -= all_sources_round_block(graph.snapshot(), t, n, words, 0,
                                           words, cur.data(), next.data(),
                                           counts.data(), done.data(),
                                           col_active.data(), active_cols,
                                           all.per_source);
      std::swap(cur, next);
      graph.step();
    }
  } else if (max_rounds > 0 && remaining > 0) {
    // Round-synchronous worker pool: each worker owns a contiguous word
    // block for the whole run.  The barrier's completion step (exclusive,
    // runs while every worker is parked) swaps the buffers, advances the
    // model and recomputes the shared stop flag; workers read that flag
    // only after the barrier, so every thread always agrees on the round
    // count.  `remaining` is the one cross-block quantity — decremented
    // with a relaxed atomic in the work phase, read only in the
    // completion step.
    std::atomic<std::size_t> remaining_shared{remaining};
    std::uint64_t round = 0;
    bool stop = false;
    // Error funnel: a throwing worker (or a throwing graph.step()) must
    // end the run with a catchable exception, exactly like the serial
    // path — not std::terminate.  Failing workers record the first
    // exception, raise `failed`, and keep arriving at the barrier so
    // nobody deadlocks; the completion step turns `failed` into `stop`.
    std::atomic<bool> failed{false};
    std::mutex error_mutex;
    std::exception_ptr first_error;
    const auto record_error = [&]() noexcept {
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
      failed.store(true, std::memory_order_relaxed);
    };
    std::barrier sync(static_cast<std::ptrdiff_t>(workers), [&]() noexcept {
      try {
        std::swap(cur, next);
        graph.step();
        ++round;
      } catch (...) {
        record_error();
      }
      stop = failed.load(std::memory_order_relaxed) ||
             round >= max_rounds ||
             remaining_shared.load(std::memory_order_relaxed) == 0;
    });
    auto work = [&](std::size_t k) {
      const std::size_t w_lo = k * words / workers;
      const std::size_t w_hi = (k + 1) * words / workers;
      std::vector<std::size_t> active_cols;
      active_cols.reserve(w_hi - w_lo);
      while (true) {
        try {
          const std::size_t completed = all_sources_round_block(
              graph.snapshot(), round, n, words, w_lo, w_hi, cur.data(),
              next.data(), counts.data(), done.data(), col_active.data(),
              active_cols, all.per_source);
          if (completed > 0) {
            remaining_shared.fetch_sub(completed, std::memory_order_relaxed);
          }
        } catch (...) {
          record_error();
        }
        sync.arrive_and_wait();
        if (stop) break;
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    try {
      for (std::size_t k = 0; k < workers; ++k) pool.emplace_back(work, k);
    } catch (...) {
      // Thread spawn failed after some workers already started: record
      // the error and retire the unspawned participants from the barrier
      // (arrive_and_drop), so the live workers can complete the current
      // phase, observe stop, and exit — the same catchable-exception
      // contract as every other failure, never a deadlock + terminate.
      record_error();
      for (std::size_t k = pool.size(); k < workers; ++k) {
        sync.arrive_and_drop();
      }
    }
    for (std::thread& worker : pool) worker.join();
    if (first_error) std::rethrow_exception(first_error);
  }
  all.min_rounds = max_rounds;
  all.max_rounds = 0;
  for (NodeId s = 0; s < n; ++s) {
    if (!done[s]) {
      all.per_source[s].completed = false;
      all.per_source[s].rounds = max_rounds;
    } else {
      ++all.completed_count;
      all.min_rounds = std::min(all.min_rounds, all.per_source[s].rounds);
    }
    all.max_rounds = std::max(all.max_rounds, all.per_source[s].rounds);
  }
  // With zero completed sources min_rounds keeps its max_rounds
  // initialization — the documented budget fallback.
  all.all_completed = all.completed_count == n;
  return all;
}

PhaseSplit split_phases(const FloodResult& result, std::size_t num_nodes) {
  PhaseSplit split;
  if (!result.completed) return split;
  const std::size_t half = (num_nodes + 1) / 2;
  std::uint64_t first_half_time = result.rounds;
  for (std::size_t t = 0; t < result.informed_counts.size(); ++t) {
    if (result.informed_counts[t] >= half) {
      first_half_time = t;
      break;
    }
  }
  split.spreading_rounds = first_half_time;
  split.saturation_rounds = result.rounds - first_half_time;
  return split;
}

}  // namespace megflood
