#pragma once

// A snapshot is the edge set E_t of the dynamic graph at one time step.
//
// Storage is a flat edge buffer plus a CSR (compressed sparse row)
// adjacency view — one `offsets` array and one flat `neighbors` array —
// instead of per-node vectors.  Producers append edges in O(1); the CSR
// view is built lazily in two passes on first neighbor query and all
// buffers reuse their capacity across clear()/add_edge cycles, so a model
// stepping in a loop performs no per-step allocation after warmup.
//
// The CSR fill pass walks the edge buffer in insertion order, so each
// node's neighbor list is exactly the sequence of push_backs the old
// per-node-vector layout produced — downstream consumers that sample from
// neighbor lists (e.g. k-push) see bit-for-bit identical streams.

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

namespace megflood {

using NodeId = std::uint32_t;

class Snapshot {
 public:
  Snapshot() = default;
  explicit Snapshot(std::size_t num_nodes) : num_nodes_(num_nodes) {}

  std::size_t num_nodes() const noexcept { return num_nodes_; }
  std::size_t num_edges() const noexcept { return edges_.size(); }

  // Drops all edges, keeps capacity.  Inline: clear()/add_edge() are the
  // producer side of every model's per-step snapshot rebuild.
  void clear() noexcept {
    edges_.clear();
    csr_valid_ = false;
  }

  // Resize to `num_nodes` and drop all edges.
  void reset(std::size_t num_nodes);

  // Adds undirected {u, v}; caller guarantees no duplicates within a step
  // (models generate each pair at most once per snapshot).
  void add_edge(NodeId u, NodeId v) {
    check_node(u);
    check_node(v);
    edges_.emplace_back(u, v);
    csr_valid_ = false;
  }

  // Replaces the edge set wholesale by swapping buffers: `edges` receives
  // the previous edge list (its capacity gets reused by the producer next
  // step).  Caller guarantees the add_edge contract for every entry
  // (endpoints < num_nodes(), no duplicates); producers that already own
  // a validated pair list (NeighborIndex::collect_pairs) skip the
  // per-edge bounds checks this way.
  void swap_edges(std::vector<std::pair<NodeId, NodeId>>& edges) noexcept {
    edges_.swap(edges);
    csr_valid_ = false;
  }

  // Neighbor list of v in insertion order.  The span is invalidated by the
  // next clear()/reset()/add_edge().
  std::span<const NodeId> neighbors(NodeId v) const;

  std::size_t degree(NodeId v) const;

  bool has_edge(NodeId u, NodeId v) const;

  // Canonical (u < v) edge list, ordered by u then by adjacency position.
  std::vector<std::pair<NodeId, NodeId>> edges() const;

  // The raw edge buffer in insertion order (endpoints as added, not
  // canonicalized).  Lets edge-centric consumers (the word-parallel
  // all-sources flood) iterate E_t without materializing the CSR view.
  const std::vector<std::pair<NodeId, NodeId>>& edge_buffer() const noexcept {
    return edges_;
  }

  // Raw CSR view for hot loops that scan many nodes per round: node v's
  // neighbors are neighbors[offsets[v] .. offsets[v + 1]).  `offsets` has
  // num_nodes() + 1 entries; pointers are invalidated by the next
  // mutation.
  struct CsrView {
    const std::uint32_t* offsets;
    const NodeId* neighbors;
  };
  CsrView csr() const {
    ensure_csr();
    return {offsets_.data(), neighbors_.data()};
  }

 private:
  void ensure_csr() const;
  void check_node(NodeId v) const {
    if (v >= num_nodes_) {
      throw std::out_of_range("Snapshot: node id out of range");
    }
  }

  std::size_t num_nodes_ = 0;
  std::vector<std::pair<NodeId, NodeId>> edges_;

  // Lazily built CSR view; mutable because building it on first query is
  // not an observable state change (single-threaded use assumed).
  mutable std::vector<std::uint32_t> offsets_;  // num_nodes_ + 1 entries
  mutable std::vector<std::uint32_t> cursor_;   // fill scratch
  mutable std::vector<NodeId> neighbors_;       // 2 * num_edges entries
  mutable bool csr_valid_ = false;
};

}  // namespace megflood
