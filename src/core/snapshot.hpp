#pragma once

// A snapshot is the edge set E_t of the dynamic graph at one time step,
// stored as adjacency lists for O(deg) neighbor scans during flooding.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace megflood {

using NodeId = std::uint32_t;

class Snapshot {
 public:
  Snapshot() = default;
  explicit Snapshot(std::size_t num_nodes) : adjacency_(num_nodes) {}

  std::size_t num_nodes() const noexcept { return adjacency_.size(); }
  std::size_t num_edges() const noexcept { return num_edges_; }

  // Drops all edges, keeps capacity.
  void clear();

  // Resize to `num_nodes` and drop all edges.
  void reset(std::size_t num_nodes);

  // Adds undirected {u, v}; caller guarantees no duplicates within a step
  // (models generate each pair at most once per snapshot).
  void add_edge(NodeId u, NodeId v);

  const std::vector<NodeId>& neighbors(NodeId v) const {
    return adjacency_.at(v);
  }

  std::size_t degree(NodeId v) const { return adjacency_.at(v).size(); }

  bool has_edge(NodeId u, NodeId v) const;

  std::vector<std::pair<NodeId, NodeId>> edges() const;

 private:
  std::vector<std::vector<NodeId>> adjacency_;
  std::size_t num_edges_ = 0;
};

}  // namespace megflood
