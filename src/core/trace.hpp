#pragma once

// Trace recording: capture the snapshot sequence of any dynamic graph so
// it can be replayed deterministically (ScriptedDynamicGraph), compared
// across protocols on the *same* sample path, or serialized for offline
// analysis.

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "core/dynamic_graph.hpp"
#include "core/fixed_graphs.hpp"

namespace megflood {

// Records `steps + 1` snapshots: the current one and the next `steps`
// (the graph is advanced `steps` times).
std::vector<Snapshot> record_trace(DynamicGraph& graph, std::size_t steps);

// Convenience: record and wrap into a replayable dynamic graph.
ScriptedDynamicGraph replay_trace(DynamicGraph& graph, std::size_t steps,
                                  bool cycle = false);

// Plain-text serialization: line-oriented, one "t <step>" header per
// snapshot followed by "u v" edge lines.  Human-greppable and diffable.
void write_trace(std::ostream& os, const std::vector<Snapshot>& trace);

// Parses the write_trace format.  Throws std::invalid_argument on
// malformed input.
std::vector<Snapshot> read_trace(std::istream& is, std::size_t num_nodes);

}  // namespace megflood
