#include "core/format.hpp"

#include <cmath>
#include <cstdio>

#include "core/scenario.hpp"
#include "util/table.hpp"

namespace megflood {

namespace {

// Local equivalent of bench/bench_util.hpp's table helper: the formatter
// lives in the library and must not depend on the bench tree.
std::string fmt_rounds(const Measurement& m, double value,
                       int precision = 1) {
  return m.all_incomplete() ? "n/a (0 done)" : Table::num(value, precision);
}

}  // namespace

std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.10g", value);
  return buffer;
}

std::string format_cli_number(double value) {
  if (value == std::floor(value) && std::abs(value) < 1e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.0f", value);
    return buffer;
  }
  return format_double(value);
}

std::string json_quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buffer;
    } else {
      out += c;
    }
  }
  return out + "\"";
}

ResultFields result_fields(const ScenarioSpec& spec,
                           const ScenarioResult& result) {
  const Measurement& m = result.measurement;
  const std::size_t completed = m.rounds.count;
  ResultFields fields = {
      {"model", spec.model},
      {"process", spec.process},
      {"n", std::to_string(result.num_nodes)},
      {"trials", std::to_string(spec.trial.trials)},
      {"completed", std::to_string(completed)},
      {"incomplete", std::to_string(m.incomplete)},
      {"errors", std::to_string(m.errors.size())},
  };
  const auto stat = [&](const std::string& name, double value) {
    fields.emplace_back(name, m.all_incomplete() ? "" : format_double(value));
  };
  stat("rounds_mean", m.rounds.mean);
  stat("rounds_median", m.rounds.median);
  stat("rounds_p90", m.rounds.p90);
  stat("rounds_p99", m.rounds.p99);
  stat("rounds_max", m.rounds.max);
  stat("spreading_median", m.spreading_rounds.median);
  stat("saturation_median", m.saturation_rounds.median);
  for (const auto& [name, summary] : m.metrics) {
    stat(name + "_mean", summary.mean);
    stat(name + "_median", summary.median);
  }
  return fields;
}

std::string join_warnings(const std::vector<std::string>& warnings) {
  std::string joined;
  for (const std::string& w : warnings) {
    joined += (joined.empty() ? "" : "; ") + w;
  }
  return joined;
}

void emit_csv_header(std::ostream& out, const ResultFields& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    out << fields[i].first << (i + 1 < fields.size() ? "," : "\n");
  }
}

void emit_csv_row(std::ostream& out, const ResultFields& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    out << fields[i].second << (i + 1 < fields.size() ? "," : "\n");
  }
}

void emit_csv(std::ostream& out, const ScenarioSpec& spec,
              const ScenarioResult& result,
              const std::vector<std::string>& warnings) {
  auto fields = result_fields(spec, result);
  fields.emplace_back("warnings", join_warnings(warnings));
  emit_csv_header(out, fields);
  emit_csv_row(out, fields);
}

std::string result_json_object(const ScenarioSpec& spec,
                               const ScenarioResult& result,
                               const std::vector<std::string>& warnings) {
  const auto fields = result_fields(spec, result);
  std::string out = "{";
  bool first = true;
  for (const auto& [name, value] : fields) {
    if (!first) out += ", ";
    first = false;
    out += json_quote(name) + ": ";
    const bool numeric = name != "model" && name != "process";
    if (value.empty()) {
      out += "null";
    } else if (numeric) {
      out += value;
    } else {
      out += json_quote(value);
    }
  }
  out += ", \"warnings\": [";
  for (std::size_t i = 0; i < warnings.size(); ++i) {
    out += (i ? ", " : "") + json_quote(warnings[i]);
  }
  out += "]}";
  return out;
}

void emit_json(std::ostream& out, const ScenarioSpec& spec,
               const ScenarioResult& result,
               const std::vector<std::string>& warnings) {
  out << result_json_object(spec, result, warnings) << "\n";
}

void emit_table(std::ostream& out, const ScenarioSpec& spec,
                const ScenarioResult& result) {
  const Measurement& m = result.measurement;
  out << "scenario: " << scenario_to_cli(spec) << "\n";
  out << "n = " << result.num_nodes << ", completed " << m.rounds.count << "/"
      << spec.trial.trials << " trials\n\n";
  Table table({"statistic", "value"});
  table.add_row({"rounds mean", fmt_rounds(m, m.rounds.mean)});
  table.add_row({"rounds median", fmt_rounds(m, m.rounds.median)});
  table.add_row({"rounds p90", fmt_rounds(m, m.rounds.p90)});
  table.add_row({"rounds p99", fmt_rounds(m, m.rounds.p99)});
  table.add_row({"rounds max", fmt_rounds(m, m.rounds.max, 0)});
  table.add_row(
      {"spreading median", fmt_rounds(m, m.spreading_rounds.median)});
  table.add_row(
      {"saturation median", fmt_rounds(m, m.saturation_rounds.median)});
  for (const auto& [name, summary] : m.metrics) {
    table.add_row({name + " median", fmt_rounds(m, summary.median, 0)});
  }
  table.print(out);
  if (m.all_incomplete()) {
    out << "WARNING: no completed trials — round statistics are not "
           "meaningful\n";
  } else if (m.incomplete > 0) {
    out << "WARNING: " << m.incomplete << " incomplete trials\n";
  }
}

}  // namespace megflood
