#pragma once

// The central abstraction of the library: a dynamic graph
// G([n], {E_t}_{t >= 0}) as defined in Section 2 of the paper — a
// stochastic process over edge sets on a fixed node set [n].  Concrete
// implementations are the edge-MEGs, node-MEGs and mobility models; all
// higher layers (flooding, estimators, protocols) work through this
// interface.

#include <cstddef>
#include <cstdint>

#include "core/snapshot.hpp"

namespace megflood {

class DynamicGraph {
 public:
  virtual ~DynamicGraph() = default;

  DynamicGraph(const DynamicGraph&) = delete;
  DynamicGraph& operator=(const DynamicGraph&) = delete;

  virtual std::size_t num_nodes() const = 0;

  // The current edge set E_t.
  virtual const Snapshot& snapshot() const = 0;

  // Advance the process one step: E_t -> E_{t+1}.
  virtual void step() = 0;

  // Current time t (number of step() calls since the last reset).
  std::uint64_t time() const noexcept { return time_; }

  // Re-sample the initial configuration with a fresh seed and set t = 0.
  // Whether "initial" means the stationary distribution or a worst-case
  // start is a property of the concrete model (documented per model).
  virtual void reset(std::uint64_t seed) = 0;

 protected:
  DynamicGraph() = default;

  void advance_clock() noexcept { ++time_; }
  void reset_clock() noexcept { time_ = 0; }

 private:
  std::uint64_t time_ = 0;
};

}  // namespace megflood
