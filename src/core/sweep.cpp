#include "core/sweep.hpp"

#include <cmath>
#include <set>
#include <stdexcept>

#include "core/format.hpp"

namespace megflood {

namespace {

double parse_sweep_number(const std::string& what, const std::string& text) {
  std::size_t pos = 0;
  double parsed = 0.0;
  try {
    parsed = std::stod(text, &pos);
  } catch (const std::exception&) {
    pos = std::string::npos;
  }
  if (pos != text.size() || !std::isfinite(parsed)) {
    throw std::invalid_argument("sweep " + what + ": '" + text +
                                "' is not a finite number");
  }
  return parsed;
}

}  // namespace

SweepSpec parse_sweep(const std::string& value) {
  SweepSpec sweep;
  const std::size_t eq = value.find('=');
  if (eq == std::string::npos || eq == 0) {
    throw std::invalid_argument(
        "sweep: expected key=a:b:step, got '" + value + "'");
  }
  sweep.key = value.substr(0, eq);
  const std::string range = value.substr(eq + 1);
  const std::size_t c1 = range.find(':');
  const std::size_t c2 = c1 == std::string::npos
                             ? std::string::npos
                             : range.find(':', c1 + 1);
  if (c1 == std::string::npos || c2 == std::string::npos ||
      range.find(':', c2 + 1) != std::string::npos) {
    throw std::invalid_argument(
        "sweep: expected key=a:b:step, got '" + value + "'");
  }
  sweep.lo = parse_sweep_number("start", range.substr(0, c1));
  sweep.hi = parse_sweep_number("stop", range.substr(c1 + 1, c2 - c1 - 1));
  sweep.step = parse_sweep_number("step", range.substr(c2 + 1));
  if (sweep.step <= 0.0) {
    throw std::invalid_argument("sweep: step must be > 0");
  }
  if (sweep.lo > sweep.hi) {
    throw std::invalid_argument("sweep: start must be <= stop");
  }
  if ((sweep.hi - sweep.lo) / sweep.step > 10000.0) {
    throw std::invalid_argument("sweep: more than 10000 points");
  }
  return sweep;
}

std::vector<SweepSpec> parse_multi_sweep(const std::string& value) {
  std::vector<SweepSpec> axes;
  std::set<std::string> seen;
  std::size_t start = 0;
  while (start <= value.size()) {
    const std::size_t comma = value.find(',', start);
    const std::string axis_text =
        value.substr(start, comma == std::string::npos ? std::string::npos
                                                       : comma - start);
    if (axis_text.empty()) {
      throw std::invalid_argument(
          "sweep: empty axis in '" + value +
          "' (expected key=a:b:step[,key=a:b:step...])");
    }
    SweepSpec axis = parse_sweep(axis_text);
    if (!seen.insert(axis.key).second) {
      throw std::invalid_argument("sweep: key '" + axis.key +
                                  "' appears more than once");
    }
    axes.push_back(std::move(axis));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return axes;
}

std::vector<std::string> sweep_axis_values(const SweepSpec& axis) {
  std::vector<std::string> values;
  for (std::size_t i = 0;; ++i) {
    const double value = axis.lo + static_cast<double>(i) * axis.step;
    if (value > axis.hi + axis.step * 1e-9) break;
    values.push_back(format_cli_number(value));
  }
  return values;
}

std::vector<SweepPoint> expand_sweep_points(
    const std::vector<SweepSpec>& axes) {
  if (axes.empty()) return {};
  std::vector<SweepPoint> points = {SweepPoint{}};
  for (const SweepSpec& axis : axes) {
    const std::vector<std::string> values = sweep_axis_values(axis);
    std::vector<SweepPoint> next;
    if (points.size() * values.size() > 100000) {
      throw std::invalid_argument("sweep: more than 100000 points total");
    }
    next.reserve(points.size() * values.size());
    // First axis slowest: extend every existing prefix with each value of
    // the new (faster) axis in order.
    for (const SweepPoint& prefix : points) {
      for (const std::string& value : values) {
        SweepPoint point = prefix;
        point.emplace_back(axis.key, value);
        next.push_back(std::move(point));
      }
    }
    points = std::move(next);
  }
  return points;
}

}  // namespace megflood
