#pragma once

// Parameter sweeps: one axis is `key=lo:hi:step`, a multi-key sweep is a
// comma-joined list of axes whose Cartesian product defines the points
// (ISSUE 8, generalizing the PR 5 single-key --sweep).  The expansion is
// shared by megflood_run (--sweep=a=..:..:..,b=..:..:.. emits one CSV row
// per point) and the serve layer (a job with a "sweep" field expands
// server-side into one cache-keyed sub-job per point), so "the same sweep"
// means the same point list everywhere.
//
// Point ordering is row-major with the FIRST axis slowest: for
// a=1:2:1,b=10:30:10 the points are (1,10) (1,20) (1,30) (2,10) (2,20)
// (2,30).  Values are formatted as CLI literals (integral points print
// integral) so a point round-trips through the scenario parameter parsers.

#include <string>
#include <utility>
#include <vector>

namespace megflood {

struct SweepSpec {
  std::string key;
  double lo = 0.0;
  double hi = 0.0;
  double step = 0.0;
};

// One axis, "key=lo:hi:step".  Throws std::invalid_argument on a malformed
// spec (missing key, non-numeric bounds, step <= 0, reversed bounds,
// > 10000 points per axis).
SweepSpec parse_sweep(const std::string& value);

// Comma-joined axes; duplicate keys are rejected (std::invalid_argument).
std::vector<SweepSpec> parse_multi_sweep(const std::string& value);

// The formatted point values of one axis: lo, lo+step, .., hi (inclusive
// upper bound with step*1e-9 slack so accumulated fp error cannot drop the
// final point of e.g. 0.03:0.06:0.03).
std::vector<std::string> sweep_axis_values(const SweepSpec& axis);

// One entry per Cartesian point; each point is the ordered (key, value)
// assignment list, axes in input order.  Throws std::invalid_argument when
// the product exceeds 100000 points.
using SweepPoint = std::vector<std::pair<std::string, std::string>>;
std::vector<SweepPoint> expand_sweep_points(
    const std::vector<SweepSpec>& axes);

}  // namespace megflood
