#include "core/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>
#include <sstream>
#include <stdexcept>

#include "core/fixed_graphs.hpp"
#include "graph/builders.hpp"
#include "markov/chain.hpp"
#include "meg/clique_flicker.hpp"
#include "meg/edge_meg.hpp"
#include "meg/general_edge_meg.hpp"
#include "meg/heterogeneous_edge_meg.hpp"
#include "meg/node_meg.hpp"
#include "meg/storage.hpp"
#include "mobility/random_paths.hpp"
#include "mobility/random_trip.hpp"
#include "mobility/random_walk.hpp"
#include "mobility/random_waypoint.hpp"
#include "protocols/gossip.hpp"
#include "protocols/k_push.hpp"
#include "protocols/radio_broadcast.hpp"
#include "protocols/ttl_flooding.hpp"

namespace megflood {

namespace {

[[noreturn]] void fail(const std::string& message) {
  throw std::invalid_argument("scenario: " + message);
}

double parse_double(const std::string& key, const std::string& value) {
  std::size_t pos = 0;
  double parsed = 0.0;
  try {
    parsed = std::stod(value, &pos);
  } catch (const std::exception&) {
    fail("parameter " + key + ": '" + value + "' is not a number");
  }
  if (pos != value.size() || !std::isfinite(parsed)) {
    // Rejecting non-finite values here keeps every downstream range check
    // sound (NaN compares false against any bound).
    fail("parameter " + key + ": '" + value + "' is not a finite number");
  }
  return parsed;
}

MegStorage parse_storage(const std::string& value) {
  if (value == "dense") return MegStorage::kDense;
  if (value == "sparse") return MegStorage::kSparse;
  if (value == "auto") return MegStorage::kAuto;
  fail("storage must be dense|sparse|auto, got '" + value + "'");
}

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
  std::size_t pos = 0;
  unsigned long long parsed = 0;
  try {
    parsed = std::stoull(value, &pos);
  } catch (const std::exception&) {
    fail("parameter " + key + ": '" + value +
         "' is not a non-negative integer");
  }
  if (pos != value.size() || (!value.empty() && value[0] == '-')) {
    fail("parameter " + key + ": '" + value +
         "' is not a non-negative integer");
  }
  return parsed;
}

// Resolves a model's parameter map against its declared schema: every
// override key must be declared (unknown key = hard error, a typo never
// silently becomes a default), every declared key gets its default unless
// overridden.
class ParamReader {
 public:
  ParamReader(const ScenarioModelInfo& info,
              const std::map<std::string, std::string>& overrides) {
    for (const ScenarioParam& p : info.params) {
      values_[p.name] = p.default_value;
    }
    for (const auto& [key, value] : overrides) {
      const auto it = values_.find(key);
      if (it == values_.end()) {
        std::string known;
        for (const ScenarioParam& p : info.params) {
          known += (known.empty() ? "" : ", ") + p.name;
        }
        fail("model '" + info.name + "' has no parameter '" + key +
             "' (known: " + known + ")");
      }
      it->second = value;
      overridden_.insert(key);
    }
    name_ = info.name;
  }

  // Hard error when any of `keys` was explicitly overridden but the
  // selected model variant (described by `variant`) never reads it — an
  // override the run ignores is as dangerous as a typo'd key.
  void reject_unused(const std::string& variant,
                     std::initializer_list<const char*> keys) const {
    for (const char* key : keys) {
      if (overridden_.count(key)) {
        fail("model '" + name_ + "': parameter '" + std::string(key) +
             "' does not apply to " + variant);
      }
    }
  }

  const std::string& str(const std::string& key) const {
    return values_.at(key);
  }
  double num(const std::string& key) const {
    return parse_double(key, values_.at(key));
  }
  std::uint64_t u64(const std::string& key) const {
    return parse_u64(key, values_.at(key));
  }
  std::size_t size(const std::string& key) const {
    return static_cast<std::size_t>(u64(key));
  }

 private:
  std::map<std::string, std::string> values_;
  std::set<std::string> overridden_;
  std::string name_;
};

struct ModelEntry {
  ScenarioModelInfo info;
  ScenarioModel (*build)(const ParamReader&);
};

// ---------------------------------------------------------------------------
// Model builders
// ---------------------------------------------------------------------------

ScenarioModel build_edge_meg(const ParamReader& p) {
  const std::size_t n = p.size("n");
  const double q = p.num("q");
  double birth = p.num("p");
  // Only the documented sentinel p = 0 switches to alpha derivation; an
  // out-of-range p is a hard error like any other bad value, it must not
  // silently become "use alpha".
  if (birth < 0.0 || birth > 1.0) {
    fail("edge_meg: p must be in [0,1] (0 = derive from alpha)");
  }
  if (birth == 0.0) {
    const double alpha = p.num("alpha");
    if (alpha <= 0.0 || alpha >= 1.0) fail("edge_meg: alpha must be in (0,1)");
    birth = alpha * q / (1.0 - alpha);  // alpha = p / (p + q)
  } else {
    p.reject_unused("an explicit p (alpha is derived-p only)", {"alpha"});
  }
  const std::string init_name = p.str("init");
  EdgeMegInit init;
  if (init_name == "stationary") {
    init = EdgeMegInit::kStationary;
  } else if (init_name == "off") {
    init = EdgeMegInit::kAllOff;
  } else if (init_name == "on") {
    init = EdgeMegInit::kAllOn;
  } else {
    fail("edge_meg: init must be stationary|off|on, got '" + init_name + "'");
  }
  return {[=](std::uint64_t seed) -> std::unique_ptr<DynamicGraph> {
            return std::make_unique<TwoStateEdgeMEG>(
                n, TwoStateParams{birth, q}, seed, init);
          },
          n};
}

ScenarioModel build_general_edge_meg(const ParamReader& p) {
  const std::size_t n = p.size("n");
  const std::string link = p.str("link");
  BurstyLink built = [&] {
    if (link == "bursty") {
      p.reject_unused("link=bursty", {"period", "on_states", "advance"});
      return make_bursty_link(p.num("wake"), p.num("ready"), p.num("drop"));
    }
    if (link == "duty_cycle") {
      p.reject_unused("link=duty_cycle", {"wake", "ready", "drop"});
      return make_duty_cycle_link(p.size("period"), p.size("on_states"),
                                  p.num("advance"));
    }
    if (link == "four_state") {
      p.reject_unused("link=four_state",
                      {"wake", "ready", "drop", "period", "on_states",
                       "advance"});
      return make_four_state_link(FourStateLinkParams{});
    }
    fail("general_edge_meg: link must be bursty|duty_cycle|four_state, got '" +
         link + "'");
  }();
  const MegStorage storage = parse_storage(p.str("storage"));
  // Probe at n = 2: an explicit storage=sparse on a chain without a
  // quiescent majority must fail at validation time, not on trial 1
  // (sparse qualification depends only on the chain, not on n).
  (void)GeneralEdgeMEG(2, built.chain, built.chi, 0, storage);
  ScenarioModel model{[n, built, storage](std::uint64_t seed)
                          -> std::unique_ptr<DynamicGraph> {
                        return std::make_unique<GeneralEdgeMEG>(
                            n, built.chain, built.chi, seed, storage);
                      },
                      n};
  // Predict what the real-n constructor will resolve to (qualification
  // depends only on the chain: probe sparse at n = 2) so the decision can
  // travel the warning channel before trial 1 allocates anything.
  MegStorage resolved = storage;
  if (storage == MegStorage::kAuto) {
    bool qualifies = true;
    try {
      (void)GeneralEdgeMEG(2, built.chain, built.chi, 0, MegStorage::kSparse);
    } catch (const std::exception&) {
      qualifies = false;
    }
    resolved = qualifies && meg_auto_prefers_sparse(
                                GeneralEdgeMEG::dense_footprint_bytes(n))
                   ? MegStorage::kSparse
                   : MegStorage::kDense;
  }
  const std::string note =
      meg_storage_note("general_edge_meg", n, storage, resolved,
                       GeneralEdgeMEG::dense_footprint_bytes(n));
  if (!note.empty()) model.warnings.push_back(note);
  return model;
}

ScenarioModel build_het_edge_meg(const ParamReader& p) {
  const std::size_t n = p.size("n");
  const std::string sampler_name = p.str("sampler");
  const MegStorage storage = parse_storage(p.str("storage"));
  EdgeRateSampler sampler;
  RateBounds bounds;
  if (sampler_name == "uniform_alpha") {
    p.reject_unused("sampler=uniform_alpha",
                    {"p", "q", "slow_fraction", "slow_factor"});
    sampler = uniform_alpha_rates(p.num("speed_lo"), p.num("speed_hi"),
                                  p.num("alpha_lo"), p.num("alpha_hi"));
    bounds = uniform_alpha_bounds(p.num("speed_lo"), p.num("speed_hi"),
                                  p.num("alpha_lo"), p.num("alpha_hi"));
  } else if (sampler_name == "two_speed") {
    p.reject_unused("sampler=two_speed",
                    {"speed_lo", "speed_hi", "alpha_lo", "alpha_hi"});
    sampler = two_speed_rates(TwoStateParams{p.num("p"), p.num("q")},
                              p.num("slow_fraction"), p.num("slow_factor"));
    bounds = two_speed_bounds(TwoStateParams{p.num("p"), p.num("q")},
                              p.num("slow_fraction"), p.num("slow_factor"));
  } else {
    fail("het_edge_meg: sampler must be uniform_alpha|two_speed, got '" +
         sampler_name + "'");
  }
  // Probe at n = 2 like build_general_edge_meg: unsound RateBounds for a
  // sparse run (e.g. a zero birth envelope) must fail at validation
  // time, not on trial 1.  kAuto is resolved against the *real* n first
  // — a tiny probe under kAuto would take the dense branch and skip
  // exactly the sparse bounds checks it exists to front-load.
  const MegStorage probe_storage =
      storage == MegStorage::kAuto &&
              meg_auto_prefers_sparse(
                  HeterogeneousEdgeMEG::dense_footprint_bytes(n))
          ? MegStorage::kSparse
          : storage;
  (void)HeterogeneousEdgeMEG(2, sampler, 0, probe_storage, bounds);
  ScenarioModel model{[n, sampler, storage, bounds](std::uint64_t seed)
                          -> std::unique_ptr<DynamicGraph> {
                        return std::make_unique<HeterogeneousEdgeMEG>(
                            n, sampler, seed, storage, bounds);
                      },
                      n};
  // het_edge_meg sparse qualification is the bounds soundness the probe
  // above already enforced, so kAuto resolution at the real n is purely
  // the footprint threshold.
  const std::uint64_t footprint =
      HeterogeneousEdgeMEG::dense_footprint_bytes(n);
  const MegStorage resolved =
      storage == MegStorage::kAuto
          ? (meg_auto_prefers_sparse(footprint) ? MegStorage::kSparse
                                                : MegStorage::kDense)
          : storage;
  const std::string note =
      meg_storage_note("het_edge_meg", n, storage, resolved, footprint);
  if (!note.empty()) model.warnings.push_back(note);
  return model;
}

ScenarioModel build_node_meg(const ParamReader& p) {
  const std::size_t n = p.size("n");
  const std::size_t states = p.size("states");
  if (states < 3) fail("node_meg: states must be >= 3");
  const DenseChain chain = lazy_random_walk_chain(cycle_graph(states));
  const std::string connection_name = p.str("connection");
  ConnectionMap connection = [&] {
    if (connection_name == "same_state") {
      p.reject_unused("connection=same_state", {"radius"});
      return same_state_connection(states);
    }
    if (connection_name == "cycle") {
      return cycle_proximity_connection(states, p.size("radius"));
    }
    fail("node_meg: connection must be same_state|cycle, got '" +
         connection_name + "'");
  }();
  return {[n, chain, connection](std::uint64_t seed)
              -> std::unique_ptr<DynamicGraph> {
            return std::make_unique<ExplicitNodeMEG>(n, chain, connection,
                                                     seed);
          },
          n};
}

ScenarioModel build_clique_flicker(const ParamReader& p) {
  const std::size_t n = p.size("n");
  const std::size_t clique = p.size("clique");
  const double rho = p.num("rho");
  const double resample = p.num("resample");
  return {[=](std::uint64_t seed) -> std::unique_ptr<DynamicGraph> {
            return std::make_unique<CliqueFlickerGraph>(n, clique, rho, seed,
                                                        resample);
          },
          n};
}

ScenarioModel build_random_walk(const ParamReader& p) {
  const std::size_t n = p.size("n");
  RandomWalkParams params;
  params.move_radius = static_cast<std::uint32_t>(p.u64("move_radius"));
  params.connect_radius = static_cast<std::uint32_t>(p.u64("connect_radius"));
  params.mobile_fraction = p.num("mobile_fraction");
  const auto mobility =
      std::make_shared<const Graph>(grid_2d(p.size("side")));
  return {[n, params, mobility](std::uint64_t seed)
              -> std::unique_ptr<DynamicGraph> {
            return std::make_unique<RandomWalkModel>(mobility, n, params,
                                                     seed);
          },
          n};
}

ScenarioModel build_random_waypoint(const ParamReader& p) {
  const std::size_t n = p.size("n");
  WaypointParams params;
  params.side_length = p.num("side");
  params.v_min = p.num("v_min");
  params.v_max = p.num("v_max");
  params.radius = p.num("radius");
  params.resolution = p.size("resolution");
  return {[n, params](std::uint64_t seed) -> std::unique_ptr<DynamicGraph> {
            return std::make_unique<RandomWaypointModel>(n, params, seed);
          },
          n, RandomWaypointModel::suggested_warmup(params)};
}

ScenarioModel build_random_trip(const ParamReader& p) {
  const std::size_t n = p.size("n");
  const std::string policy_name = p.str("policy");
  const double side = p.num("side");
  const double v_min = p.num("v_min");
  const double v_max = p.num("v_max");
  std::shared_ptr<const TripPolicy> policy;
  if (policy_name == "square") {
    p.reject_unused("policy=square", {"leg_lo", "leg_hi"});
    policy = std::make_shared<SquareWaypointPolicy>(
        side, v_min, v_max, p.u64("pause_lo"), p.u64("pause_hi"));
  } else if (policy_name == "disk") {
    p.reject_unused("policy=disk",
                    {"pause_lo", "pause_hi", "leg_lo", "leg_hi"});
    policy = std::make_shared<DiskWaypointPolicy>(side, v_min, v_max);
  } else if (policy_name == "direction") {
    p.reject_unused("policy=direction", {"pause_lo", "pause_hi"});
    policy = std::make_shared<RandomDirectionPolicy>(
        side, v_min, v_max, p.num("leg_lo"), p.num("leg_hi"));
  } else {
    fail("random_trip: policy must be square|disk|direction, got '" +
         policy_name + "'");
  }
  const double radius = p.num("radius");
  const std::size_t resolution = p.size("resolution");
  return {[n, policy, radius, resolution](std::uint64_t seed)
              -> std::unique_ptr<DynamicGraph> {
            return std::make_unique<RandomTripModel>(n, policy, radius,
                                                     resolution, seed);
          },
          n, RandomTripModel::suggested_warmup(*policy)};
}

ScenarioModel build_grid_paths(const ParamReader& p) {
  const std::size_t n = p.size("n");
  const std::size_t side = p.size("side");
  const auto connect = static_cast<std::uint32_t>(p.u64("connect_radius"));
  return {[=](std::uint64_t seed) -> std::unique_ptr<DynamicGraph> {
            return std::make_unique<GridLPathsModel>(side, n, connect, seed);
          },
          n};
}

std::size_t square_side(const char* model, std::size_t n) {
  const auto side = static_cast<std::size_t>(
      std::llround(std::sqrt(static_cast<double>(n))));
  if (side == 0 || side * side != n) {
    fail(std::string(model) + ": n must be a perfect square (a side*side " +
         "grid), got " + std::to_string(n));
  }
  return side;
}

ScenarioModel make_fixed_model(std::shared_ptr<const Graph> graph) {
  const std::size_t n = graph->num_vertices();
  return {[graph = std::move(graph)](std::uint64_t)
              -> std::unique_ptr<DynamicGraph> {
            return std::make_unique<FixedDynamicGraph>(*graph);
          },
          n};
}

ScenarioModel build_fixed(const ParamReader& p) {
  const std::size_t n = p.size("n");
  if (n == 0) fail("fixed: n must be >= 1");
  const std::string topology = p.str("topology");
  auto graph = std::make_shared<const Graph>([&]() -> Graph {
    if (topology == "path") return path_graph(n);
    if (topology == "cycle") return cycle_graph(n);
    if (topology == "complete") return complete_graph(n);
    if (topology == "star") return star_graph(n);
    if (topology == "grid") return grid_2d(square_side("fixed", n));
    if (topology == "torus") return torus_2d(square_side("fixed", n));
    fail("fixed: topology must be path|cycle|complete|star|grid|torus, "
         "got '" + topology + "'");
  }());
  return make_fixed_model(std::move(graph));
}

ScenarioModel build_k_augmented(const ParamReader& p) {
  const std::size_t n = p.size("n");
  const std::size_t side = square_side("k_augmented_grid", n);
  const std::size_t k = p.size("k");
  if (k == 0) fail("k_augmented_grid: k must be >= 1");
  const std::uint64_t torus = p.u64("torus");
  if (torus > 1) fail("k_augmented_grid: torus must be 0|1");
  if (torus == 1 && side <= 2 * k + 1) {
    fail("k_augmented_grid: the torus construction requires side > 2k + 1");
  }
  auto graph = std::make_shared<const Graph>(
      torus == 1 ? k_augmented_torus(side, k) : k_augmented_grid(side, k));
  return make_fixed_model(std::move(graph));
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

const std::vector<ModelEntry>& registry() {
  static const std::vector<ModelEntry> entries = {
      {{"edge_meg",
        "two-state edge-Markovian evolving graph (birth p, death q)",
        {{"n", "256", "number of nodes"},
         {"p", "0", "per-edge birth probability (0 = derive from alpha)"},
         {"q", "0.3", "per-edge death probability"},
         {"alpha", "0.02", "stationary edge density p/(p+q), used when p=0"},
         {"init", "stationary", "initial edge law: stationary|off|on"}}},
       &build_edge_meg},
      {{"general_edge_meg",
        "hidden-chain edge-MEG (Appendix A generalization)",
        {{"n", "128", "number of nodes"},
         {"link", "bursty", "link chain: bursty|duty_cycle|four_state"},
         {"wake", "0.02", "bursty: off -> warming rate"},
         {"ready", "0.5", "bursty: warming -> on rate"},
         {"drop", "0.3", "bursty: on -> off rate"},
         {"period", "6", "duty_cycle: cycle length"},
         {"on_states", "2", "duty_cycle: number of on states"},
         {"advance", "0.5", "duty_cycle: advance probability"},
         {"storage", "auto",
          "state storage: dense|sparse|auto (sparse = minority map, "
          "O(minority+on) memory; auto switches on a memory threshold)"}}},
       &build_general_edge_meg},
      {{"het_edge_meg",
        "heterogeneous per-edge (p, q) edge-MEG",
        {{"n", "128", "number of nodes"},
         {"sampler", "uniform_alpha", "rate law: uniform_alpha|two_speed"},
         {"speed_lo", "0.1", "uniform_alpha: min p+q"},
         {"speed_hi", "1.0", "uniform_alpha: max p+q"},
         {"alpha_lo", "0.01", "uniform_alpha: min stationary density"},
         {"alpha_hi", "0.05", "uniform_alpha: max stationary density"},
         {"p", "0.02", "two_speed: base birth rate"},
         {"q", "0.3", "two_speed: base death rate"},
         {"slow_fraction", "0.2", "two_speed: fraction of slow edges"},
         {"slow_factor", "0.1", "two_speed: slow-edge rate scale"},
         {"storage", "auto",
          "state storage: dense|sparse|auto (sparse = on-set only, rates "
          "re-derived on demand; auto switches on a memory threshold)"}}},
       &build_het_edge_meg},
      {{"node_meg",
        "explicit node-MEG: lazy walk on a cycle of states + connection map",
        {{"n", "128", "number of nodes"},
         {"states", "12", "cycle length of the hidden state chain"},
         {"connection", "same_state", "connection map: same_state|cycle"},
         {"radius", "1", "cycle connection: max state distance"}}},
       &build_node_meg},
      {{"clique_flicker",
        "flickering-clique ablation model (max positive edge correlation)",
        {{"n", "128", "number of nodes"},
         {"clique", "16", "clique size m"},
         {"rho", "0.5", "probability the clique is on per step"},
         {"resample", "1.0", "subset resample probability per step"}}},
       &build_clique_flicker},
      {{"random_walk",
        "graph mobility: lazy-ball random walk of agents on a grid",
        {{"n", "128", "number of agents"},
         {"side", "8", "grid side (side*side points)"},
         {"move_radius", "1", "hops per move (rho)"},
         {"connect_radius", "0", "connection range in hops (0 = same point)"},
         {"mobile_fraction", "1.0", "fraction of mobile agents"}}},
       &build_random_walk},
      {{"random_waypoint",
        "random waypoint over the square (geometric mobility)",
        {{"n", "96", "number of agents"},
         {"side", "8.0", "square side length L"},
         {"v_min", "0.5", "minimum trip speed"},
         {"v_max", "1.0", "maximum trip speed"},
         {"radius", "1.0", "transmission radius"},
         {"resolution", "32", "connectivity grid resolution"}}},
       &build_random_waypoint},
      {{"random_trip",
        "Le Boudec-Vojnovic random trip class (square|disk|direction)",
        {{"n", "96", "number of agents"},
         {"policy", "square", "trip policy: square|disk|direction"},
         {"side", "8.0", "bounding square side"},
         {"v_min", "0.5", "minimum trip speed"},
         {"v_max", "1.0", "maximum trip speed"},
         {"pause_lo", "0", "square: min pause rounds at waypoint"},
         {"pause_hi", "0", "square: max pause rounds at waypoint"},
         {"leg_lo", "1.0", "direction: min leg length"},
         {"leg_hi", "4.0", "direction: max leg length"},
         {"radius", "1.0", "transmission radius"},
         {"resolution", "32", "connectivity grid resolution"}}},
       &build_random_trip},
      {{"grid_paths",
        "L-shaped shortest paths on a grid (the paper's random paths model)",
        {{"n", "200", "number of agents"},
         {"side", "10", "grid side"},
         {"connect_radius", "1", "L1 connection radius in hops"}}},
       &build_grid_paths},
      {{"fixed",
        "fixed-topology baseline: E_t = E (flooding = synchronous BFS)",
        {{"n", "64", "number of nodes (grid|torus: a perfect square)"},
         {"topology", "cycle",
          "topology: path|cycle|complete|star|grid|torus"}}},
       &build_fixed},
      {{"k_augmented_grid",
        "static k-augmented grid/torus (Corollary 6's headline example)",
        {{"n", "64", "number of nodes (side^2, a perfect square)"},
         {"k", "2", "connect grid points at hop distance <= k"},
         {"torus", "0", "1 = wrap around (regular; needs side > 2k+1)"}}},
       &build_k_augmented},
  };
  return entries;
}

const ModelEntry& find_entry(const std::string& name) {
  for (const ModelEntry& entry : registry()) {
    if (entry.info.name == name) return entry;
  }
  std::string known;
  for (const ModelEntry& entry : registry()) {
    known += (known.empty() ? "" : ", ") + entry.info.name;
  }
  fail(name.empty() ? "missing model name (pass --model=<name>; known: " +
                          known + ")"
                    : "unknown model '" + name + "' (known: " + known + ")");
}

}  // namespace

const std::vector<ScenarioModelInfo>& scenario_models() {
  static const std::vector<ScenarioModelInfo> infos = [] {
    std::vector<ScenarioModelInfo> out;
    for (const ModelEntry& entry : registry()) out.push_back(entry.info);
    return out;
  }();
  return infos;
}

const ScenarioModelInfo* find_scenario_model(const std::string& name) {
  for (const ScenarioModelInfo& info : scenario_models()) {
    if (info.name == name) return &info;
  }
  return nullptr;
}

ScenarioModel make_model_factory(const ScenarioSpec& spec) {
  const ModelEntry& entry = find_entry(spec.model);
  const ParamReader reader(entry.info, spec.params);
  ScenarioModel model = entry.build(reader);
  if (model.num_nodes == 0) fail(spec.model + ": n must be >= 1");
  return model;
}

ProcessFactory make_process_factory(const std::string& process_spec) {
  const std::size_t colon = process_spec.find(':');
  const std::string head = process_spec.substr(0, colon);
  const std::string arg =
      colon == std::string::npos ? "" : process_spec.substr(colon + 1);
  if (head == "flooding") {
    if (!arg.empty()) fail("process flooding takes no argument");
    return [] { return std::make_unique<FloodingProcess>(); };
  }
  if (head == "gossip") {
    GossipMode mode;
    if (arg.empty() || arg == "pushpull") {
      mode = GossipMode::kPushPull;
    } else if (arg == "push") {
      mode = GossipMode::kPush;
    } else if (arg == "pull") {
      mode = GossipMode::kPull;
    } else {
      fail("gossip mode must be push|pull|pushpull, got '" + arg + "'");
    }
    return [mode] { return std::make_unique<GossipProcess>(mode); };
  }
  if (head == "kpush") {
    const std::uint64_t k = arg.empty() ? 1 : parse_u64("kpush", arg);
    if (k == 0) fail("kpush: k must be >= 1");
    return [k] { return std::make_unique<KPushProcess>(k); };
  }
  if (head == "radio") {
    const double tau = arg.empty() ? 1.0 : parse_double("radio", arg);
    if (tau <= 0.0 || tau > 1.0) fail("radio: tau must be in (0,1]");
    return [tau] { return std::make_unique<RadioBroadcastProcess>(tau); };
  }
  if (head == "ttl") {
    const std::uint64_t ttl = arg.empty() ? 8 : parse_u64("ttl", arg);
    if (ttl == 0) fail("ttl: ttl must be >= 1");
    return [ttl] { return std::make_unique<TtlFloodingProcess>(ttl); };
  }
  fail("unknown process '" + head +
       "' (known: flooding, gossip[:push|pull|pushpull], kpush[:<k>], "
       "radio[:<tau>], ttl[:<ttl>])");
}

ScenarioResult run_scenario(const ScenarioSpec& spec) {
  return run_scenario(spec, MeasureHooks{});
}

ScenarioResult run_scenario(const ScenarioSpec& spec,
                            const MeasureHooks& hooks) {
  const ScenarioModel model = make_model_factory(spec);
  const ProcessFactory process = make_process_factory(spec.process);
  TrialConfig trial = spec.trial;
  if (spec.warmup_auto) {
    if (!model.suggested_warmup) {
      fail("model '" + spec.model +
           "' declares no suggested warmup, so --warmup=auto is undefined; "
           "pass a numeric --warmup (mobility models random_waypoint and "
           "random_trip support auto)");
    }
    trial.warmup_steps = *model.suggested_warmup;
  }
  ScenarioResult result;
  result.num_nodes = model.num_nodes;
  result.warnings = model.warnings;
  result.measurement = measure(model.factory, process, trial, hooks);
  return result;
}

// ---------------------------------------------------------------------------
// CLI round-trip
// ---------------------------------------------------------------------------

std::vector<std::string> scenario_to_args(const ScenarioSpec& spec) {
  std::vector<std::string> args;
  args.push_back("--model=" + spec.model);
  for (const auto& [key, value] : spec.params) {  // std::map: sorted keys
    args.push_back("--" + key + "=" + value);
  }
  args.push_back("--process=" + spec.process);
  args.push_back("--trials=" + std::to_string(spec.trial.trials));
  args.push_back("--seed=" + std::to_string(spec.trial.seed));
  args.push_back("--max_rounds=" + std::to_string(spec.trial.max_rounds));
  args.push_back("--warmup=" + (spec.warmup_auto
                                    ? std::string("auto")
                                    : std::to_string(spec.trial.warmup_steps)));
  args.push_back("--threads=" + std::to_string(spec.trial.threads));
  args.push_back("--rotate_sources=" +
                 std::string(spec.trial.rotate_sources ? "1" : "0"));
  return args;
}

std::string scenario_to_cli(const ScenarioSpec& spec) {
  std::string cli;
  for (const std::string& arg : scenario_to_args(spec)) {
    cli += (cli.empty() ? "" : " ") + arg;
  }
  return cli;
}

ScenarioSpec parse_scenario_args(const std::vector<std::string>& args) {
  ScenarioSpec spec;
  for (const std::string& arg : args) {
    if (arg.rfind("--", 0) != 0) {
      fail("expected --key=value, got '" + arg + "'");
    }
    const std::size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      fail("expected --key=value, got '" + arg + "'");
    }
    const std::string key = arg.substr(2, eq - 2);
    const std::string value = arg.substr(eq + 1);
    if (key == "model") {
      spec.model = value;
    } else if (key == "process") {
      spec.process = value;
    } else if (key == "trials") {
      spec.trial.trials = static_cast<std::size_t>(parse_u64(key, value));
    } else if (key == "seed") {
      spec.trial.seed = parse_u64(key, value);
    } else if (key == "max_rounds") {
      spec.trial.max_rounds = parse_u64(key, value);
    } else if (key == "warmup") {
      if (value == "auto") {
        spec.warmup_auto = true;
        spec.trial.warmup_steps = 0;
      } else {
        spec.warmup_auto = false;
        spec.trial.warmup_steps = parse_u64(key, value);
      }
    } else if (key == "threads") {
      spec.trial.threads = static_cast<std::size_t>(parse_u64(key, value));
    } else if (key == "rotate_sources") {
      if (value == "1" || value == "true") {
        spec.trial.rotate_sources = true;
      } else if (value == "0" || value == "false") {
        spec.trial.rotate_sources = false;
      } else {
        fail("rotate_sources must be 0|1|true|false, got '" + value + "'");
      }
    } else if (key.empty()) {
      fail("expected --key=value, got '" + arg + "'");
    } else {
      spec.params[key] = value;  // model parameter; validated at build time
    }
  }
  return spec;
}

ScenarioSpec parse_scenario_cli(const std::string& cli) {
  std::istringstream stream(cli);
  std::vector<std::string> args;
  std::string token;
  while (stream >> token) args.push_back(token);
  return parse_scenario_args(args);
}

}  // namespace megflood
