#include "core/driver.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/scenario.hpp"
#include "util/fault_injection.hpp"
#include "util/resource.hpp"
#include "util/table.hpp"

namespace megflood {

namespace {

std::string fmt(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.10g", value);
  return buffer;
}

// Local equivalents of bench/bench_util.hpp's table helpers: the driver
// lives in the library and must not depend on the bench tree.
std::string fmt_rounds(const Measurement& m, double value,
                       int precision = 1) {
  return m.all_incomplete() ? "n/a (0 done)" : Table::num(value, precision);
}

void print_usage(std::ostream& os) {
  os << "usage: megflood_run --model=<name> [--<param>=<value> ...]\n"
        "                    [--process=<spec>] [--trials=N] [--seed=S]\n"
        "                    [--max_rounds=M] [--warmup=W|auto] [--threads=T]\n"
        "                    [--rotate_sources=0|1] [--format=table|csv|json]\n"
        "                    [--sweep=key=a:b:step] [--checkpoint=FILE]\n"
        "                    [--inject=SPEC] [--contain=0|1]\n"
        "                    [--deadline=SECONDS] [--rss_budget_mb=N]\n"
        "       megflood_run --list\n"
        "\n"
        "process spec: flooding | gossip[:push|pull|pushpull] | kpush[:<k>]\n"
        "              | radio[:<tau>] | ttl[:<ttl>]\n"
        "--warmup=auto uses the model's suggested warmup (Theta(L/v) for\n"
        "the geometric mobility models; models without one fail hard).\n"
        "--sweep runs one scenario per point key = a, a+step, .., b and\n"
        "emits one CSV row per point (requires --format=csv; the swept key\n"
        "must be a declared model parameter — unknown key = hard error).\n"
        "--checkpoint journals each completed trial; re-running the same\n"
        "campaign (same scenario CLI, seed, trials, threads) resumes and\n"
        "reproduces the uninterrupted output byte for byte.\n"
        "--inject arms deterministic fault sites, e.g.\n"
        "  throw:trial=K | throw:prob=P | slow:trial=K,ms=M |\n"
        "  alloc:trial=K,mb=M | kill:after=K   (join sites with '+')\n"
        "exit codes:   0 ok, 2 invalid scenario/usage, 3 no trial completed\n"
        "              (sweep: 3 if any point completed no trial),\n"
        "              4 partial (trial errors, interruption, or an\n"
        "              uncontained runtime failure)\n";
}

void print_list(std::ostream& os) {
  os << "registered models:\n";
  for (const ScenarioModelInfo& info : scenario_models()) {
    os << "\n  " << info.name << " — " << info.summary << "\n";
    for (const ScenarioParam& param : info.params) {
      char line[256];
      std::snprintf(line, sizeof(line), "    --%-16s default %-12s %s\n",
                    param.name.c_str(), param.default_value.c_str(),
                    param.description.c_str());
      os << line;
    }
  }
  os << "\nprocesses: flooding | gossip[:push|pull|pushpull] | "
        "kpush[:<k>] | radio[:<tau>] | ttl[:<ttl>]\n";
}

// Flat (column, value) row shared by the csv and json emitters; round
// statistics are empty when no trial completed (all_incomplete), never 0.
std::vector<std::pair<std::string, std::string>> result_fields(
    const ScenarioSpec& spec, const ScenarioResult& result) {
  const Measurement& m = result.measurement;
  const std::size_t completed = m.rounds.count;
  std::vector<std::pair<std::string, std::string>> fields = {
      {"model", spec.model},
      {"process", spec.process},
      {"n", std::to_string(result.num_nodes)},
      {"trials", std::to_string(spec.trial.trials)},
      {"completed", std::to_string(completed)},
      {"incomplete", std::to_string(m.incomplete)},
      {"errors", std::to_string(m.errors.size())},
  };
  const auto stat = [&](const std::string& name, double value) {
    fields.emplace_back(name, m.all_incomplete() ? "" : fmt(value));
  };
  stat("rounds_mean", m.rounds.mean);
  stat("rounds_median", m.rounds.median);
  stat("rounds_p90", m.rounds.p90);
  stat("rounds_p99", m.rounds.p99);
  stat("rounds_max", m.rounds.max);
  stat("spreading_median", m.spreading_rounds.median);
  stat("saturation_median", m.saturation_rounds.median);
  for (const auto& [name, summary] : m.metrics) {
    stat(name + "_mean", summary.mean);
    stat(name + "_median", summary.median);
  }
  return fields;
}

// The warning channel collapses to one CSV cell, so individual warnings
// must stay comma-free (enforced at the sources) and are ';'-joined here.
std::string join_warnings(const std::vector<std::string>& warnings) {
  std::string joined;
  for (const std::string& w : warnings) {
    joined += (joined.empty() ? "" : "; ") + w;
  }
  return joined;
}

void emit_csv_header(
    std::ostream& out,
    const std::vector<std::pair<std::string, std::string>>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    out << fields[i].first << (i + 1 < fields.size() ? "," : "\n");
  }
}

void emit_csv_row(
    std::ostream& out,
    const std::vector<std::pair<std::string, std::string>>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    out << fields[i].second << (i + 1 < fields.size() ? "," : "\n");
  }
}

void emit_csv(std::ostream& out, const ScenarioSpec& spec,
              const ScenarioResult& result,
              const std::vector<std::string>& warnings) {
  auto fields = result_fields(spec, result);
  fields.emplace_back("warnings", join_warnings(warnings));
  emit_csv_header(out, fields);
  emit_csv_row(out, fields);
}

std::string json_quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out + "\"";
}

void emit_json(std::ostream& out, const ScenarioSpec& spec,
               const ScenarioResult& result,
               const std::vector<std::string>& warnings) {
  const auto fields = result_fields(spec, result);
  out << "{";
  bool first = true;
  for (const auto& [name, value] : fields) {
    if (!first) out << ", ";
    first = false;
    out << json_quote(name) << ": ";
    const bool numeric = name != "model" && name != "process";
    if (value.empty()) {
      out << "null";
    } else if (numeric) {
      out << value;
    } else {
      out << json_quote(value);
    }
  }
  out << ", \"warnings\": [";
  for (std::size_t i = 0; i < warnings.size(); ++i) {
    out << (i ? ", " : "") << json_quote(warnings[i]);
  }
  out << "]}\n";
}

void emit_table(std::ostream& out, const ScenarioSpec& spec,
                const ScenarioResult& result) {
  const Measurement& m = result.measurement;
  out << "scenario: " << scenario_to_cli(spec) << "\n";
  out << "n = " << result.num_nodes << ", completed " << m.rounds.count << "/"
      << spec.trial.trials << " trials\n\n";
  Table table({"statistic", "value"});
  table.add_row({"rounds mean", fmt_rounds(m, m.rounds.mean)});
  table.add_row({"rounds median", fmt_rounds(m, m.rounds.median)});
  table.add_row({"rounds p90", fmt_rounds(m, m.rounds.p90)});
  table.add_row({"rounds p99", fmt_rounds(m, m.rounds.p99)});
  table.add_row({"rounds max", fmt_rounds(m, m.rounds.max, 0)});
  table.add_row(
      {"spreading median", fmt_rounds(m, m.spreading_rounds.median)});
  table.add_row(
      {"saturation median", fmt_rounds(m, m.saturation_rounds.median)});
  for (const auto& [name, summary] : m.metrics) {
    table.add_row({name + " median", fmt_rounds(m, summary.median, 0)});
  }
  table.print(out);
  if (m.all_incomplete()) {
    out << "WARNING: no completed trials — round statistics are not "
           "meaningful\n";
  } else if (m.incomplete > 0) {
    out << "WARNING: " << m.incomplete << " incomplete trials\n";
  }
}

double parse_sweep_number(const std::string& what, const std::string& text) {
  std::size_t pos = 0;
  double parsed = 0.0;
  try {
    parsed = std::stod(text, &pos);
  } catch (const std::exception&) {
    pos = std::string::npos;
  }
  if (pos != text.size() || !std::isfinite(parsed)) {
    throw std::invalid_argument("sweep " + what + ": '" + text +
                                "' is not a finite number");
  }
  return parsed;
}

// Sweep values print like CLI literals: integral points stay integral
// (an n sweep must produce "128", not "128.0", to round-trip through
// the u64 parameter parser).
std::string fmt_sweep_value(double v) {
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.0f", v);
    return buffer;
  }
  return fmt(v);
}

// Per-trial diagnostics shared by every non-table format path; the
// machine-readable stream on `out` stays clean.
void report_trouble(std::ostream& err, const ScenarioSpec& spec,
                    const Measurement& m, const std::string& where) {
  const std::string at = where.empty() ? "" : " at " + where;
  if (m.incomplete > 0) {
    err << "megflood_run: " << m.incomplete << "/" << spec.trial.trials
        << " trials incomplete" << at << "\n";
  }
  for (const TrialError& e : m.errors) {
    err << "megflood_run: trial " << e.trial << " failed" << at << ": "
        << e.what << " (graph_seed=" << e.graph_seed
        << " process_seed=" << e.process_seed << ")\n";
  }
  if (m.interrupted) {
    err << "megflood_run: interrupted" << at << " — " << m.not_run << "/"
        << spec.trial.trials
        << " trials never ran (completed trials are recorded)\n";
  }
}

// Folds one measurement into the campaign exit code; partial (4)
// dominates stalled (3).
int worse_exit(int current, const Measurement& m) {
  if (!m.errors.empty() || m.interrupted) return kExitPartial;
  if (m.all_incomplete()) return std::max(current, kExitStalled);
  return current;
}

// One scenario run per point, one CSV row per point with the swept value
// as the first column.  A stalled point must not hide in a green sweep
// (exit 3); a point with trial errors or an interruption is partial
// (exit 4).
int run_sweep(std::ostream& out, std::ostream& err, const ScenarioSpec& base,
              const SweepSpec& sweep, const MeasureHooks& hooks) {
  bool header_emitted = false;
  int code = kExitOk;
  for (std::size_t i = 0;; ++i) {
    const double value = sweep.lo + static_cast<double>(i) * sweep.step;
    // Slack on the inclusive upper bound so accumulated fp error cannot
    // drop the final point of e.g. 0.03:0.06:0.03.
    if (value > sweep.hi + sweep.step * 1e-9) break;
    if (hooks.cancel && hooks.cancel->load(std::memory_order_relaxed)) {
      err << "megflood_run: interrupted — sweep stopped before " << sweep.key
          << "=" << fmt_sweep_value(value) << "\n";
      return kExitPartial;
    }
    ScenarioSpec spec = base;
    spec.params[sweep.key] = fmt_sweep_value(value);
    const ScenarioResult result = run_scenario(spec, hooks);
    auto fields = result_fields(spec, result);
    fields.emplace_back("warnings", join_warnings(result.warnings));
    // Prepend the swept value — unless a result column already carries
    // the key (sweeping n: the built-in n column holds exactly the swept
    // value, and a duplicate header name breaks by-name CSV consumers).
    const bool already_a_column =
        std::any_of(fields.begin(), fields.end(),
                    [&](const auto& field) { return field.first == sweep.key; });
    if (!already_a_column) {
      fields.insert(fields.begin(), {sweep.key, spec.params[sweep.key]});
    }
    if (!header_emitted) {
      emit_csv_header(out, fields);
      header_emitted = true;
    }
    emit_csv_row(out, fields);
    code = worse_exit(code, result.measurement);
    report_trouble(err, spec, result.measurement,
                   sweep.key + "=" + spec.params[sweep.key]);
  }
  return code;
}

std::uint64_t parse_flag_u64(const std::string& flag,
                             const std::string& value) {
  std::size_t pos = 0;
  unsigned long long parsed = 0;
  try {
    parsed = std::stoull(value, &pos);
  } catch (const std::exception&) {
    pos = std::string::npos;
  }
  if (pos != value.size() || value.empty() || value[0] == '-') {
    throw std::invalid_argument(flag + " must be a non-negative integer, "
                                "got '" + value + "'");
  }
  return parsed;
}

double parse_flag_seconds(const std::string& flag, const std::string& value) {
  std::size_t pos = 0;
  double parsed = 0.0;
  try {
    parsed = std::stod(value, &pos);
  } catch (const std::exception&) {
    pos = std::string::npos;
  }
  if (pos != value.size() || !std::isfinite(parsed) || parsed < 0.0) {
    throw std::invalid_argument(flag + " must be a non-negative number of "
                                "seconds, got '" + value + "'");
  }
  return parsed;
}

bool parse_flag_bool(const std::string& flag, const std::string& value) {
  if (value == "1" || value == "true") return true;
  if (value == "0" || value == "false") return false;
  throw std::invalid_argument(flag + " must be 0|1, got '" + value + "'");
}

}  // namespace

SweepSpec parse_sweep(const std::string& value) {
  SweepSpec sweep;
  const std::size_t eq = value.find('=');
  if (eq == std::string::npos || eq == 0) {
    throw std::invalid_argument(
        "sweep: expected key=a:b:step, got '" + value + "'");
  }
  sweep.key = value.substr(0, eq);
  const std::string range = value.substr(eq + 1);
  const std::size_t c1 = range.find(':');
  const std::size_t c2 = c1 == std::string::npos
                             ? std::string::npos
                             : range.find(':', c1 + 1);
  if (c1 == std::string::npos || c2 == std::string::npos ||
      range.find(':', c2 + 1) != std::string::npos) {
    throw std::invalid_argument(
        "sweep: expected key=a:b:step, got '" + value + "'");
  }
  sweep.lo = parse_sweep_number("start", range.substr(0, c1));
  sweep.hi = parse_sweep_number("stop", range.substr(c1 + 1, c2 - c1 - 1));
  sweep.step = parse_sweep_number("step", range.substr(c2 + 1));
  if (sweep.step <= 0.0) {
    throw std::invalid_argument("sweep: step must be > 0");
  }
  if (sweep.lo > sweep.hi) {
    throw std::invalid_argument("sweep: start must be <= stop");
  }
  if ((sweep.hi - sweep.lo) / sweep.step > 10000.0) {
    throw std::invalid_argument("sweep: more than 10000 points");
  }
  return sweep;
}

std::atomic<bool>& driver_cancel_flag() {
  // The one sanctioned mutable singleton: POSIX signal handlers can only
  // reach process-global state, so the SIGINT/SIGTERM graceful-stop flag
  // cannot be passed explicitly.  Atomic, write-once (false -> true), and
  // never read on an output-affecting path before the workers observe it
  // through MeasureHooks::cancel.
  // megflood-lint: allow(mutable-global)
  static std::atomic<bool> flag{false};
  return flag;
}

int run_driver(const std::vector<std::string>& raw_args, std::ostream& out,
               std::ostream& err) {
  std::vector<std::string> args;
  std::string format = "table";
  std::string sweep_arg;
  std::string checkpoint_path;
  std::string inject_spec;
  std::string contain_arg = "1";
  std::string deadline_arg = "0";
  std::string rss_budget_arg = "0";
  bool list = false;
  for (const std::string& arg : raw_args) {
    if (arg == "--list") {
      list = true;
    } else if (arg == "--help" || arg == "-h") {
      print_usage(out);
      return kExitOk;
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
    } else if (arg.rfind("--sweep=", 0) == 0) {
      if (!sweep_arg.empty()) {
        err << "megflood_run: --sweep given twice\n";
        return kExitConfigError;
      }
      sweep_arg = arg.substr(8);
    } else if (arg.rfind("--checkpoint=", 0) == 0) {
      checkpoint_path = arg.substr(13);
    } else if (arg.rfind("--inject=", 0) == 0) {
      inject_spec = arg.substr(9);
    } else if (arg.rfind("--contain=", 0) == 0) {
      contain_arg = arg.substr(10);
    } else if (arg.rfind("--deadline=", 0) == 0) {
      deadline_arg = arg.substr(11);
    } else if (arg.rfind("--rss_budget_mb=", 0) == 0) {
      rss_budget_arg = arg.substr(16);
    } else {
      args.push_back(arg);
    }
  }
  if (list) {
    print_list(out);
    return kExitOk;
  }
  if (format != "table" && format != "csv" && format != "json") {
    err << "megflood_run: format must be table|csv|json, got '" << format
        << "'\n";
    return kExitConfigError;
  }
  if (!sweep_arg.empty() && format != "csv") {
    err << "megflood_run: --sweep emits one row per point and "
           "requires --format=csv\n";
    return kExitConfigError;
  }
  if (!sweep_arg.empty() && !checkpoint_path.empty()) {
    // The journal header binds ONE campaign identity; a sweep is many.
    err << "megflood_run: --checkpoint and --sweep cannot be combined "
           "(the journal binds a single campaign)\n";
    return kExitConfigError;
  }
  if (checkpoint_path.empty() && !inject_spec.empty() &&
      inject_spec.find("kill:") != std::string::npos) {
    err << "megflood_run: inject site 'kill' needs --checkpoint "
           "(it fires after durable records)\n";
    return kExitConfigError;
  }
  if (args.empty()) {
    print_usage(err);
    return kExitConfigError;
  }

  try {
    ScenarioSpec spec = parse_scenario_args(args);
    spec.trial.contain_errors = parse_flag_bool("contain", contain_arg);
    spec.trial.trial_deadline_s =
        parse_flag_seconds("deadline", deadline_arg);
    const std::uint64_t rss_budget_bytes =
        parse_flag_u64("rss_budget_mb", rss_budget_arg) << 20;

    FaultPlan plan;
    if (!inject_spec.empty()) {
      plan = FaultPlan::parse(inject_spec, spec.trial.seed);
    }
    MeasureHooks hooks;
    hooks.cancel = &driver_cancel_flag();
    if (!plan.empty()) {
      hooks.on_trial_start = [&plan](std::size_t trial) {
        plan.fire_trial_start(trial);
      };
      hooks.on_trial_recorded = [&plan](std::size_t trial) {
        plan.fire_trial_recorded(trial);
      };
    }

    if (!sweep_arg.empty()) {
      const SweepSpec sweep = parse_sweep(sweep_arg);
      if (spec.params.count(sweep.key)) {
        err << "megflood_run: --" << sweep.key
            << " is both fixed and swept\n";
        return kExitConfigError;
      }
      return run_sweep(out, err, spec, sweep, hooks);
    }

    std::unique_ptr<CheckpointJournal> journal;
    if (!checkpoint_path.empty()) {
      // The canonical CLI (driver flags excluded) + seed + trials +
      // threads is the campaign identity the journal binds.
      const CheckpointKey key{scenario_to_cli(spec), spec.trial.seed,
                              spec.trial.trials, spec.trial.threads};
      journal = std::make_unique<CheckpointJournal>(checkpoint_path, key);
      hooks.checkpoint = journal.get();
      if (journal->replayed_trials() > 0) {
        // stderr only: resumption must not perturb the byte-identical
        // stdout contract.
        err << "megflood_run: resumed " << journal->replayed_trials() << "/"
            << spec.trial.trials << " trials from " << journal->path()
            << "\n";
      }
      for (const TrialError& e : journal->replayed_errors()) {
        err << "megflood_run: previous run recorded trial " << e.trial
            << " error (will retry): " << e.what << "\n";
      }
    }

    const ScenarioResult result = run_scenario(spec, hooks);
    std::vector<std::string> warnings = result.warnings;
    // Under ASan/TSan the shadow runtime owns most of the peak RSS, so the
    // soft budget would warn about sanitizer bookkeeping, not the
    // campaign — skip it the same way the storage regression guards do.
    if (rss_guard_reliable()) {
      if (const auto rss = check_soft_rss_budget(rss_budget_bytes)) {
        warnings.push_back(*rss);
      }
    }
    if (format == "csv") {
      emit_csv(out, spec, result, warnings);
    } else if (format == "json") {
      emit_json(out, spec, result, warnings);
    } else {
      emit_table(out, spec, result);
    }
    if (format == "table") {
      for (const std::string& w : warnings) {
        err << "megflood_run: warning: " << w << "\n";
      }
    }
    report_trouble(err, spec, result.measurement, "");
    return worse_exit(kExitOk, result.measurement);
  } catch (const std::invalid_argument& error) {
    err << "megflood_run: " << error.what() << "\n";
    return kExitConfigError;
  } catch (const std::exception& error) {
    // Not a configuration problem: the campaign started and died
    // (uncontained trial error with --contain=0, checkpoint I/O failure).
    err << "megflood_run: run failed: " << error.what() << "\n";
    return kExitPartial;
  }
}

}  // namespace megflood
