#include "core/driver.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/campaign.hpp"
#include "core/checkpoint.hpp"
#include "core/format.hpp"
#include "core/scenario.hpp"
#include "util/fault_injection.hpp"
#include "util/resource.hpp"

namespace megflood {

namespace {

void print_usage(std::ostream& os) {
  os << "usage: megflood_run --model=<name> [--<param>=<value> ...]\n"
        "                    [--process=<spec>] [--trials=N] [--seed=S]\n"
        "                    [--max_rounds=M] [--warmup=W|auto] [--threads=T]\n"
        "                    [--rotate_sources=0|1] [--format=table|csv|json]\n"
        "                    [--sweep=key=a:b:step[,key=a:b:step...]]\n"
        "                    [--checkpoint=FILE]\n"
        "                    [--inject=SPEC] [--contain=0|1]\n"
        "                    [--deadline=SECONDS] [--rss_budget_mb=N]\n"
        "       megflood_run --list\n"
        "\n"
        "process spec: flooding | gossip[:push|pull|pushpull] | kpush[:<k>]\n"
        "              | radio[:<tau>] | ttl[:<ttl>]\n"
        "--warmup=auto uses the model's suggested warmup (Theta(L/v) for\n"
        "the geometric mobility models; models without one fail hard).\n"
        "--sweep runs one scenario per point of the Cartesian product of\n"
        "the comma-joined axes (first key slowest) and emits one CSV row\n"
        "per point (requires --format=csv; every swept key must be a\n"
        "declared model parameter and appear once — duplicates are a hard\n"
        "error).\n"
        "--checkpoint journals each completed trial; re-running the same\n"
        "campaign (same scenario CLI, seed, trials, threads) resumes and\n"
        "reproduces the uninterrupted output byte for byte.\n"
        "--inject arms deterministic fault sites, e.g.\n"
        "  throw:trial=K | throw:prob=P | slow:trial=K,ms=M |\n"
        "  alloc:trial=K,mb=M | kill:after=K   (join sites with '+')\n"
        "exit codes:   0 ok, 2 invalid scenario/usage, 3 no trial completed\n"
        "              (sweep: 3 if any point completed no trial),\n"
        "              4 partial (trial errors, interruption, or an\n"
        "              uncontained runtime failure)\n";
}

void print_list(std::ostream& os) {
  os << "registered models:\n";
  for (const ScenarioModelInfo& info : scenario_models()) {
    os << "\n  " << info.name << " — " << info.summary << "\n";
    for (const ScenarioParam& param : info.params) {
      char line[256];
      std::snprintf(line, sizeof(line), "    --%-16s default %-12s %s\n",
                    param.name.c_str(), param.default_value.c_str(),
                    param.description.c_str());
      os << line;
    }
  }
  os << "\nprocesses: flooding | gossip[:push|pull|pushpull] | "
        "kpush[:<k>] | radio[:<tau>] | ttl[:<ttl>]\n";
}

// Per-trial diagnostics shared by every non-table format path; the
// machine-readable stream on `out` stays clean.
void report_trouble(std::ostream& err, const ScenarioSpec& spec,
                    const Measurement& m, const std::string& where) {
  const std::string at = where.empty() ? "" : " at " + where;
  if (m.incomplete > 0) {
    err << "megflood_run: " << m.incomplete << "/" << spec.trial.trials
        << " trials incomplete" << at << "\n";
  }
  for (const TrialError& e : m.errors) {
    err << "megflood_run: trial " << e.trial << " failed" << at << ": "
        << e.what << " (graph_seed=" << e.graph_seed
        << " process_seed=" << e.process_seed << ")\n";
  }
  if (m.interrupted) {
    err << "megflood_run: interrupted" << at << " — " << m.not_run << "/"
        << spec.trial.trials
        << " trials never ran (completed trials are recorded)\n";
  }
}

// Folds one measurement into the campaign exit code; partial (4)
// dominates stalled (3).
int worse_exit(int current, const Measurement& m) {
  if (!m.errors.empty() || m.interrupted) return kExitPartial;
  if (m.all_incomplete()) return std::max(current, kExitStalled);
  return current;
}

// A short "a=0.02 b=3" label for diagnostics about one sweep point.
std::string point_label(const SweepPoint& point) {
  std::string label;
  for (const auto& [key, value] : point) {
    label += (label.empty() ? "" : " ") + key + "=" + value;
  }
  return label;
}

// One scenario run per Cartesian point, one CSV row per point with the
// swept values as the leading columns (axes in input order).  A stalled
// point must not hide in a green sweep (exit 3); a point with trial
// errors or an interruption is partial (exit 4).
int run_sweep(std::ostream& out, std::ostream& err, const ScenarioSpec& base,
              const std::vector<SweepSpec>& axes, const MeasureHooks& hooks) {
  const std::vector<SweepPoint> points = expand_sweep_points(axes);
  bool header_emitted = false;
  int code = kExitOk;
  for (const SweepPoint& point : points) {
    if (hooks.cancel && hooks.cancel->load(std::memory_order_relaxed)) {
      err << "megflood_run: interrupted — sweep stopped before "
          << point_label(point) << "\n";
      return kExitPartial;
    }
    ScenarioSpec spec = base;
    for (const auto& [key, value] : point) {
      spec.params[key] = value;
    }
    const ScenarioResult result = run_scenario(spec, hooks);
    auto fields = result_fields(spec, result);
    fields.emplace_back("warnings", join_warnings(result.warnings));
    // Prepend the swept values — unless a result column already carries
    // the key (sweeping n: the built-in n column holds exactly the swept
    // value, and a duplicate header name breaks by-name CSV consumers).
    ResultFields prefix;
    for (const auto& [key, value] : point) {
      const bool already_a_column = std::any_of(
          fields.begin(), fields.end(),
          [&, k = key](const auto& field) { return field.first == k; });
      if (!already_a_column) prefix.emplace_back(key, value);
    }
    fields.insert(fields.begin(), prefix.begin(), prefix.end());
    if (!header_emitted) {
      emit_csv_header(out, fields);
      header_emitted = true;
    }
    emit_csv_row(out, fields);
    code = worse_exit(code, result.measurement);
    report_trouble(err, spec, result.measurement, point_label(point));
  }
  return code;
}

std::uint64_t parse_flag_u64(const std::string& flag,
                             const std::string& value) {
  std::size_t pos = 0;
  unsigned long long parsed = 0;
  try {
    parsed = std::stoull(value, &pos);
  } catch (const std::exception&) {
    pos = std::string::npos;
  }
  if (pos != value.size() || value.empty() || value[0] == '-') {
    throw std::invalid_argument(flag + " must be a non-negative integer, "
                                "got '" + value + "'");
  }
  return parsed;
}

double parse_flag_seconds(const std::string& flag, const std::string& value) {
  std::size_t pos = 0;
  double parsed = 0.0;
  try {
    parsed = std::stod(value, &pos);
  } catch (const std::exception&) {
    pos = std::string::npos;
  }
  if (pos != value.size() || !std::isfinite(parsed) || parsed < 0.0) {
    throw std::invalid_argument(flag + " must be a non-negative number of "
                                "seconds, got '" + value + "'");
  }
  return parsed;
}

bool parse_flag_bool(const std::string& flag, const std::string& value) {
  if (value == "1" || value == "true") return true;
  if (value == "0" || value == "false") return false;
  throw std::invalid_argument(flag + " must be 0|1, got '" + value + "'");
}

}  // namespace

std::atomic<bool>& driver_cancel_flag() {
  // The one sanctioned mutable singleton: POSIX signal handlers can only
  // reach process-global state, so the SIGINT/SIGTERM graceful-stop flag
  // cannot be passed explicitly.  Atomic, write-once (false -> true), and
  // never read on an output-affecting path before the workers observe it
  // through MeasureHooks::cancel.
  // megflood-lint: allow(mutable-global)
  static std::atomic<bool> flag{false};
  return flag;
}

int run_driver(const std::vector<std::string>& raw_args, std::ostream& out,
               std::ostream& err) {
  std::vector<std::string> args;
  std::string format = "table";
  std::string sweep_arg;
  std::string checkpoint_path;
  std::string inject_spec;
  std::string contain_arg = "1";
  std::string deadline_arg = "0";
  std::string rss_budget_arg = "0";
  bool list = false;
  for (const std::string& arg : raw_args) {
    if (arg == "--list") {
      list = true;
    } else if (arg == "--help" || arg == "-h") {
      print_usage(out);
      return kExitOk;
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
    } else if (arg.rfind("--sweep=", 0) == 0) {
      if (!sweep_arg.empty()) {
        err << "megflood_run: --sweep given twice\n";
        return kExitConfigError;
      }
      sweep_arg = arg.substr(8);
    } else if (arg.rfind("--checkpoint=", 0) == 0) {
      checkpoint_path = arg.substr(13);
    } else if (arg.rfind("--inject=", 0) == 0) {
      inject_spec = arg.substr(9);
    } else if (arg.rfind("--contain=", 0) == 0) {
      contain_arg = arg.substr(10);
    } else if (arg.rfind("--deadline=", 0) == 0) {
      deadline_arg = arg.substr(11);
    } else if (arg.rfind("--rss_budget_mb=", 0) == 0) {
      rss_budget_arg = arg.substr(16);
    } else {
      args.push_back(arg);
    }
  }
  if (list) {
    print_list(out);
    return kExitOk;
  }
  if (format != "table" && format != "csv" && format != "json") {
    err << "megflood_run: format must be table|csv|json, got '" << format
        << "'\n";
    return kExitConfigError;
  }
  if (!sweep_arg.empty() && format != "csv") {
    err << "megflood_run: --sweep emits one row per point and "
           "requires --format=csv\n";
    return kExitConfigError;
  }
  if (!sweep_arg.empty() && !checkpoint_path.empty()) {
    // The journal header binds ONE campaign identity; a sweep is many.
    err << "megflood_run: --checkpoint and --sweep cannot be combined "
           "(the journal binds a single campaign)\n";
    return kExitConfigError;
  }
  if (checkpoint_path.empty() && !inject_spec.empty() &&
      inject_spec.find("kill:") != std::string::npos) {
    err << "megflood_run: inject site 'kill' needs --checkpoint "
           "(it fires after durable records)\n";
    return kExitConfigError;
  }
  if (args.empty()) {
    print_usage(err);
    return kExitConfigError;
  }

  try {
    ScenarioSpec spec = parse_scenario_args(args);
    spec.trial.contain_errors = parse_flag_bool("contain", contain_arg);
    spec.trial.trial_deadline_s =
        parse_flag_seconds("deadline", deadline_arg);
    const std::uint64_t rss_budget_bytes =
        parse_flag_u64("rss_budget_mb", rss_budget_arg) << 20;

    FaultPlan plan;
    if (!inject_spec.empty()) {
      try {
        plan = FaultPlan::parse(inject_spec, spec.trial.seed);
      } catch (const std::invalid_argument& error) {
        // A typo'd site should die with the grammar on one line, not a
        // bare message the user has to chase into the docs.
        err << "megflood_run: bad --inject: " << error.what() << "\n"
            << fault_inject_grammar() << "\n";
        return kExitConfigError;
      }
    }
    MeasureHooks hooks;
    hooks.cancel = &driver_cancel_flag();
    if (!plan.empty()) {
      hooks.on_trial_start = [&plan](std::size_t trial) {
        plan.fire_trial_start(trial);
      };
      hooks.on_trial_recorded = [&plan](std::size_t trial) {
        plan.fire_trial_recorded(trial);
      };
    }

    if (!sweep_arg.empty()) {
      const std::vector<SweepSpec> axes = parse_multi_sweep(sweep_arg);
      for (const SweepSpec& axis : axes) {
        if (spec.params.count(axis.key)) {
          err << "megflood_run: --" << axis.key
              << " is both fixed and swept\n";
          return kExitConfigError;
        }
      }
      return run_sweep(out, err, spec, axes, hooks);
    }

    std::unique_ptr<CheckpointJournal> journal;
    if (!checkpoint_path.empty()) {
      // The canonical campaign identity (driver flags excluded) plus the
      // thread count is what the journal binds.
      const CheckpointKey key{campaign_key(spec), spec.trial.threads};
      journal = std::make_unique<CheckpointJournal>(checkpoint_path, key);
      hooks.checkpoint = journal.get();
      if (journal->replayed_trials() > 0) {
        // stderr only: resumption must not perturb the byte-identical
        // stdout contract.
        err << "megflood_run: resumed " << journal->replayed_trials() << "/"
            << spec.trial.trials << " trials from " << journal->path()
            << "\n";
      }
      for (const TrialError& e : journal->replayed_errors()) {
        err << "megflood_run: previous run recorded trial " << e.trial
            << " error (will retry): " << e.what << "\n";
      }
    }

    const ScenarioResult result = run_scenario(spec, hooks);
    std::vector<std::string> warnings = result.warnings;
    // Under ASan/TSan the shadow runtime owns most of the peak RSS, so the
    // soft budget would warn about sanitizer bookkeeping, not the
    // campaign — skip it the same way the storage regression guards do.
    if (rss_guard_reliable()) {
      if (const auto rss = check_soft_rss_budget(rss_budget_bytes)) {
        warnings.push_back(*rss);
      }
    }
    if (format == "csv") {
      emit_csv(out, spec, result, warnings);
    } else if (format == "json") {
      emit_json(out, spec, result, warnings);
    } else {
      emit_table(out, spec, result);
    }
    if (format == "table") {
      for (const std::string& w : warnings) {
        err << "megflood_run: warning: " << w << "\n";
      }
    }
    report_trouble(err, spec, result.measurement, "");
    return worse_exit(kExitOk, result.measurement);
  } catch (const std::invalid_argument& error) {
    err << "megflood_run: " << error.what() << "\n";
    return kExitConfigError;
  } catch (const std::exception& error) {
    // Not a configuration problem: the campaign started and died
    // (uncontained trial error with --contain=0, checkpoint I/O failure).
    err << "megflood_run: run failed: " << error.what() << "\n";
    return kExitPartial;
  }
}

}  // namespace megflood
