#include "core/process.hpp"

#include <stdexcept>

namespace megflood {

ProcessResult run_process(DynamicGraph& graph, SpreadingProcess& process,
                          NodeId source, std::uint64_t max_rounds,
                          std::uint64_t seed) {
  return process.run(graph, source, max_rounds, seed);
}

ProcessResult SpreadingProcess::run(DynamicGraph& graph, NodeId source,
                                    std::uint64_t max_rounds,
                                    std::uint64_t seed) {
  SpreadingProcess& process = *this;
  const std::size_t n = graph.num_nodes();
  if (source >= n) throw std::out_of_range("run_process: bad source");

  Rng rng(seed);
  ProcessResult result;
  std::vector<char> informed(n, 0);
  informed[source] = 1;
  std::size_t count = 1;
  process.begin_trial(n, source);
  result.flood.informed_counts.push_back(count);
  if (count == n) {  // n == 1
    result.flood.completed = true;
    process.metrics(result.metrics);
    return result;
  }

  std::vector<NodeId> newly;
  for (std::uint64_t t = 0; t < max_rounds; ++t) {
    check_deadline();
    newly.clear();
    process.round(graph.snapshot(), informed, newly, rng);
    for (NodeId v : newly) informed[v] = 1;
    count += newly.size();
    result.flood.informed_counts.push_back(count);
    graph.step();
    if (count == n) {
      result.flood.completed = true;
      result.flood.rounds = t + 1;
      process.metrics(result.metrics);
      return result;
    }
    if (process.exhausted()) break;
  }
  result.flood.completed = false;
  result.flood.rounds = max_rounds;
  process.metrics(result.metrics);
  return result;
}

void FloodingProcess::begin_trial(std::size_t /*num_nodes*/,
                                  NodeId /*source*/) {
  informed_count_ = 1;
  transmissions_ = 0;
}

void FloodingProcess::round(const Snapshot& snapshot,
                            std::vector<char>& informed,
                            std::vector<NodeId>& newly, Rng& /*rng*/) {
  transmissions_ += informed_count_;
  // flood_round marks with 2, fills `newly`, and commits the marks itself;
  // the driver's commit pass is then a no-op (idempotent).
  informed_count_ += flood_round(snapshot, informed, newly);
}

void FloodingProcess::metrics(MetricsBag& out) const {
  out["transmissions"] = static_cast<double>(transmissions_);
}

ProcessResult FloodingProcess::run(DynamicGraph& graph, NodeId source,
                                   std::uint64_t max_rounds,
                                   std::uint64_t /*seed*/) {
  // Flooding is deterministic, so the word-parallel kernel is exact; the
  // transmissions metric is reconstructed from the trajectory with the
  // same accounting the generic engine uses (|I_t| sends per executed
  // round t, one executed round per informed_counts entry after the
  // first).
  begin_trial(graph.num_nodes(), source);
  ProcessResult result;
  result.flood = flood(graph, source, max_rounds);
  transmissions_ = 0;
  for (std::size_t t = 0; t + 1 < result.flood.informed_counts.size(); ++t) {
    transmissions_ += result.flood.informed_counts[t];
  }
  metrics(result.metrics);
  return result;
}

}  // namespace megflood
