#pragma once

// The unified spreading-process abstraction.  The paper's Section 5
// observes that gossip-style protocols reduce to flooding on virtual
// dynamic graphs; this header makes that observation an API: every
// protocol is a per-round rule applied to an informed set against the
// live snapshot stream, and everything else — trial loops, warmup,
// rotating sources, thread pools, quantile summaries, incomplete-trial
// accounting — is shared machinery (core/trial.hpp) that works for any
// SpreadingProcess, not just plain flooding.
//
// Contract of one round (synchronous, no within-round chaining):
//   * on entry informed[v] == 1 for nodes informed before the round and
//     0 otherwise;
//   * the process marks every node it informs with informed[v] = 2 and
//     appends it to `newly` exactly once (the mark prevents duplicate
//     appends and lets pull-style rules distinguish "informed before the
//     round" from "learned it this round");
//   * the driver commits marks back to 1 after the round.
// All randomness comes from the driver-owned Rng, seeded per trial from
// derive_seeds — no protocol rolls its own seed arithmetic.

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/dynamic_graph.hpp"
#include "core/flooding.hpp"
#include "util/rng.hpp"

namespace megflood {

// Named per-trial counters a process accumulates (gossip contacts, k-push
// transmissions, radio collisions, ...).  An ordered map so aggregation
// and printing are deterministic.
using MetricsBag = std::map<std::string, double>;

struct ProcessResult {
  FloodResult flood;
  MetricsBag metrics;
};

// Thrown by the cooperative per-trial watchdog (TrialConfig::
// trial_deadline_s) when a trial's wall clock runs past its deadline.
// The containing runner (core/trial) converts it into a TrialError
// record; without containment it propagates like any trial failure.
class TrialDeadlineExceeded : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class SpreadingProcess {
 public:
  virtual ~SpreadingProcess() = default;

  // Canonical spec string of this process instance, matching the scenario
  // grammar (e.g. "flooding", "gossip:pushpull", "kpush:3", "radio:0.5",
  // "ttl:8").
  virtual std::string name() const = 0;

  // Called once before the first round of every trial; must reset all
  // per-trial state (metrics, TTL counters, ...).
  virtual void begin_trial(std::size_t num_nodes, NodeId source) = 0;

  // One protocol round on the current snapshot (see the contract above).
  virtual void round(const Snapshot& snapshot, std::vector<char>& informed,
                     std::vector<NodeId>& newly, Rng& rng) = 0;

  // True when the process can never inform another node (e.g. TTL
  // relaying died out everywhere); run_process() then stops early and
  // reports the trial incomplete.
  virtual bool exhausted() const { return false; }

  // Export this trial's metrics.
  virtual void metrics(MetricsBag& /*out*/) const {}

  // Runs one full trial (what run_process() dispatches to).  The default
  // drives round() against the live snapshot stream — the generic
  // engine.  A process whose rule coincides with plain flooding may
  // override this to substitute the word-parallel flood() kernel; any
  // override must produce bit-identical results to the default.
  virtual ProcessResult run(DynamicGraph& graph, NodeId source,
                            std::uint64_t max_rounds, std::uint64_t seed);

  // Cooperative watchdog: the trial runner arms a wall-clock deadline
  // before run(); the generic round engine checks it once per round and
  // throws TrialDeadlineExceeded past it.  Whole-kernel overrides (the
  // flooding word-parallel kernel) need no mid-kernel check — their round
  // count is hard-bounded by max_rounds and the runner re-checks the
  // deadline when the trial returns.  Checking the clock never perturbs
  // results: a trial either finishes identically or becomes an error.
  using WatchdogClock = std::chrono::steady_clock;
  void arm_deadline(std::optional<WatchdogClock::time_point> deadline) {
    deadline_ = deadline;
  }

 protected:
  void check_deadline() const {
    if (deadline_ && WatchdogClock::now() > *deadline_) {
      throw TrialDeadlineExceeded(
          "trial exceeded its watchdog deadline (mid-trial check)");
    }
  }

 private:
  std::optional<WatchdogClock::time_point> deadline_;
};

// Runs `process` from `source` on `graph` starting at the graph's current
// snapshot, advancing the graph one step per round (exactly flood()'s
// clocking).  `seed` seeds the driver-owned Rng handed to every round;
// deterministic processes simply never draw from it.  Dispatches to
// process.run() so flooding-equivalent processes keep the word-parallel
// engine.
ProcessResult run_process(DynamicGraph& graph, SpreadingProcess& process,
                          NodeId source, std::uint64_t max_rounds,
                          std::uint64_t seed);

// Plain flooding as a SpreadingProcess: every informed node informs its
// whole neighborhood.  Deterministic (consumes no randomness).  Metric:
// "transmissions" = sum over executed rounds of |I_t| (every informed
// node sends every round).  run() substitutes the word-parallel flood()
// kernel (bit-identical to the generic round() engine, which is retained
// for the equivalence test), so measure_flooding keeps the PR 1 engine.
class FloodingProcess final : public SpreadingProcess {
 public:
  std::string name() const override { return "flooding"; }
  void begin_trial(std::size_t num_nodes, NodeId source) override;
  void round(const Snapshot& snapshot, std::vector<char>& informed,
             std::vector<NodeId>& newly, Rng& rng) override;
  void metrics(MetricsBag& out) const override;
  ProcessResult run(DynamicGraph& graph, NodeId source,
                    std::uint64_t max_rounds, std::uint64_t seed) override;

 private:
  std::size_t informed_count_ = 0;
  std::uint64_t transmissions_ = 0;
};

}  // namespace megflood
