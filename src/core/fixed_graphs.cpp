#include "core/fixed_graphs.hpp"

#include <stdexcept>

namespace megflood {

FixedDynamicGraph::FixedDynamicGraph(const Graph& graph) {
  snapshot_.reset(graph.num_vertices());
  for (const auto& [u, v] : graph.edges()) snapshot_.add_edge(u, v);
}

ScriptedDynamicGraph::ScriptedDynamicGraph(std::vector<Snapshot> script,
                                           bool cycle)
    : script_(std::move(script)), cycle_(cycle) {
  if (script_.empty()) {
    throw std::invalid_argument("ScriptedDynamicGraph: empty script");
  }
  const std::size_t n = script_.front().num_nodes();
  for (const auto& snap : script_) {
    if (snap.num_nodes() != n) {
      throw std::invalid_argument(
          "ScriptedDynamicGraph: inconsistent node counts");
    }
  }
}

std::size_t ScriptedDynamicGraph::num_nodes() const {
  return script_.front().num_nodes();
}

const Snapshot& ScriptedDynamicGraph::snapshot() const {
  return script_[cursor_];
}

void ScriptedDynamicGraph::step() {
  if (cursor_ + 1 < script_.size()) {
    ++cursor_;
  } else if (cycle_) {
    cursor_ = 0;
  }
  advance_clock();
}

void ScriptedDynamicGraph::reset(std::uint64_t) {
  cursor_ = 0;
  reset_clock();
}

}  // namespace megflood
