#include "core/snapshot.hpp"

#include <algorithm>

namespace megflood {

void Snapshot::clear() {
  for (auto& list : adjacency_) list.clear();
  num_edges_ = 0;
}

void Snapshot::reset(std::size_t num_nodes) {
  adjacency_.resize(num_nodes);
  clear();
}

void Snapshot::add_edge(NodeId u, NodeId v) {
  adjacency_.at(u).push_back(v);
  adjacency_.at(v).push_back(u);
  ++num_edges_;
}

bool Snapshot::has_edge(NodeId u, NodeId v) const {
  const auto& au = adjacency_.at(u);
  const auto& av = adjacency_.at(v);
  const auto& smaller = au.size() <= av.size() ? au : av;
  const NodeId target = au.size() <= av.size() ? v : u;
  return std::find(smaller.begin(), smaller.end(), target) != smaller.end();
}

std::vector<std::pair<NodeId, NodeId>> Snapshot::edges() const {
  std::vector<std::pair<NodeId, NodeId>> result;
  result.reserve(num_edges_);
  for (NodeId u = 0; u < adjacency_.size(); ++u) {
    for (NodeId v : adjacency_[u]) {
      if (u < v) result.emplace_back(u, v);
    }
  }
  return result;
}

}  // namespace megflood
