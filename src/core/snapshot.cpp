#include "core/snapshot.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace megflood {

void Snapshot::reset(std::size_t num_nodes) {
  num_nodes_ = num_nodes;
  clear();
}

void Snapshot::ensure_csr() const {
  if (csr_valid_) return;
  // offsets_ entries are uint32 directed-edge counts; 2 * |E| past that
  // range would wrap the prefix sums into corrupt adjacency.
  if (edges_.size() > (std::numeric_limits<std::uint32_t>::max)() / 2) {
    throw std::length_error("Snapshot: edge count overflows CSR offsets");
  }
  // Two-pass counting build: degree histogram, exclusive prefix sum, fill.
  offsets_.assign(num_nodes_ + 1, 0);
  for (const auto& [u, v] : edges_) {
    ++offsets_[u + 1];
    ++offsets_[v + 1];
  }
  for (std::size_t i = 0; i < num_nodes_; ++i) offsets_[i + 1] += offsets_[i];
  neighbors_.resize(2 * edges_.size());
  cursor_.assign(offsets_.begin(), offsets_.end() - 1);
  for (const auto& [u, v] : edges_) {
    neighbors_[cursor_[u]++] = v;
    neighbors_[cursor_[v]++] = u;
  }
  csr_valid_ = true;
}

std::span<const NodeId> Snapshot::neighbors(NodeId v) const {
  check_node(v);
  ensure_csr();
  return {neighbors_.data() + offsets_[v],
          neighbors_.data() + offsets_[v + 1]};
}

std::size_t Snapshot::degree(NodeId v) const {
  check_node(v);
  ensure_csr();
  return offsets_[v + 1] - offsets_[v];
}

bool Snapshot::has_edge(NodeId u, NodeId v) const {
  check_node(u);
  check_node(v);
  ensure_csr();
  const std::size_t du = offsets_[u + 1] - offsets_[u];
  const std::size_t dv = offsets_[v + 1] - offsets_[v];
  const NodeId probe = du <= dv ? u : v;
  const NodeId target = du <= dv ? v : u;
  const auto row = neighbors(probe);
  return std::find(row.begin(), row.end(), target) != row.end();
}

std::vector<std::pair<NodeId, NodeId>> Snapshot::edges() const {
  ensure_csr();
  std::vector<std::pair<NodeId, NodeId>> result;
  result.reserve(edges_.size());
  for (NodeId u = 0; u < num_nodes_; ++u) {
    for (NodeId v : neighbors(u)) {
      if (u < v) result.emplace_back(u, v);
    }
  }
  return result;
}

}  // namespace megflood
