#pragma once

// Shared snapshot maintenance for the geometric mobility models
// (random waypoint, random trip): agents snap to grid cells, a
// NeighborIndex tracks the cells, and the radius pairs are collected
// branchlessly and swapped into the Snapshot.  Both models fill cells()
// from their own kinematics each round and then call refresh() (per-step
// incremental path with the batch fallback) or rebuild() (init /
// collapse / reset).  Keeping the protocol in one place guarantees the
// two models can never diverge on it.

#include <cstdint>
#include <utility>
#include <vector>

#include "core/snapshot.hpp"
#include "geometry/square_grid.hpp"

namespace megflood {

class ProximitySnapshotEngine {
 public:
  ProximitySnapshotEngine(const SquareGrid& grid, double radius,
                          std::size_t num_agents)
      : index_(grid, radius) {
    cells_.resize(num_agents);
    snapshot_.reset(num_agents);
  }

  // The per-agent cell buffer the owning model fills each round.
  std::vector<CellId>& cells() noexcept { return cells_; }
  CellId cell(std::uint32_t agent) const { return cells_.at(agent); }

  const Snapshot& snapshot() const noexcept { return snapshot_; }

  // Full index rebuild from cells() (init / collapse_to / reset paths).
  void rebuild() {
    index_.rebuild(cells_);
    emit();
  }

  // Per-step path: the index diffs cells() against the previous round
  // and only moves the agents whose bucket changed — or batch-rebuilds
  // when a sampled churn estimate says that is cheaper.  Either way the
  // resulting snapshot is bit-identical to rebuild().
  void refresh() {
    index_.refresh(cells_);
    emit();
  }

 private:
  void emit() {
    index_.collect_pairs(pair_scratch_);
    snapshot_.swap_edges(pair_scratch_);
  }

  NeighborIndex index_;
  std::vector<CellId> cells_;
  std::vector<std::pair<NodeId, NodeId>> pair_scratch_;
  Snapshot snapshot_;
};

}  // namespace megflood
