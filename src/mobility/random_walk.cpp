#include "mobility/random_walk.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace megflood {

RandomWalkModel::RandomWalkModel(std::shared_ptr<const Graph> mobility_graph,
                                 std::size_t num_agents,
                                 RandomWalkParams params, std::uint64_t seed)
    : graph_(std::move(mobility_graph)),
      num_agents_(num_agents),
      params_(params),
      rng_(seed) {
  if (!graph_) throw std::invalid_argument("RandomWalkModel: null graph");
  if (num_agents < 2) {
    throw std::invalid_argument("RandomWalkModel: need at least 2 agents");
  }
  if (params_.move_radius == 0) {
    throw std::invalid_argument("RandomWalkModel: move radius must be >= 1");
  }
  if (params_.mobile_fraction < 0.0 || params_.mobile_fraction > 1.0) {
    throw std::invalid_argument(
        "RandomWalkModel: mobile fraction must be in [0,1]");
  }
  num_mobile_ = static_cast<std::size_t>(
      std::ceil(params_.mobile_fraction * static_cast<double>(num_agents)));
  const std::size_t v = graph_->num_vertices();
  move_balls_ = all_balls(*graph_, params_.move_radius);
  if (params_.connect_radius > 0) {
    connect_balls_ = all_balls(*graph_, params_.connect_radius);
  }

  // pi(x) ∝ |N+(x)| with N+(x) = ball(x) ∪ {x}: the move graph (with self
  // loops) is symmetric, so this degree-proportional measure is stationary.
  stationary_.resize(v);
  double total = 0.0;
  for (std::size_t x = 0; x < v; ++x) {
    stationary_[x] = static_cast<double>(move_balls_[x].size() + 1);
    total += stationary_[x];
  }
  stationary_cdf_.resize(v);
  double acc = 0.0;
  for (std::size_t x = 0; x < v; ++x) {
    stationary_[x] /= total;
    acc += stationary_[x];
    stationary_cdf_[x] = acc;
  }

  positions_.resize(num_agents_);
  occupants_.resize(v);
  snapshot_.reset(num_agents_);
  initialize();
}

void RandomWalkModel::initialize() {
  for (auto& pos : positions_) {
    const double u = rng_.uniform();
    const auto it = std::lower_bound(stationary_cdf_.begin(),
                                     stationary_cdf_.end(), u);
    pos = static_cast<VertexId>(
        std::min<std::size_t>(it - stationary_cdf_.begin(),
                              stationary_cdf_.size() - 1));
  }
  rebuild_snapshot();
}

void RandomWalkModel::rebuild_snapshot() {
  snapshot_.clear();
  // Sparse occupancy (points >> agents): track the occupied points and
  // visit only those, in sorted order so the edge insertion sequence is
  // identical to a full-range scan (reproducibility of consumers that
  // sample from neighbor lists).  Dense occupancy: the full scan is
  // cheaper than sorting a touched list that covers most points anyway.
  // The mode is fixed per instance, preserving the invariant that every
  // non-empty occupant list is recorded in touched_ (sparse) or that all
  // lists get cleared (dense).
  const bool sparse = occupants_.size() > 4 * num_agents_;
  if (sparse) {
    for (VertexId point : touched_) occupants_[point].clear();
  } else {
    for (auto& o : occupants_) o.clear();
  }
  touched_.clear();
  for (NodeId agent = 0; agent < num_agents_; ++agent) {
    auto& here = occupants_[positions_[agent]];
    if (sparse && here.empty()) touched_.push_back(positions_[agent]);
    here.push_back(agent);
  }
  std::sort(touched_.begin(), touched_.end());
  auto emit_point = [&](VertexId point) {
    const auto& here = occupants_[point];
    // Co-located agents are always connected (hop distance 0 <= r).
    for (std::size_t a = 0; a < here.size(); ++a) {
      for (std::size_t b = a + 1; b < here.size(); ++b) {
        snapshot_.add_edge(here[a], here[b]);
      }
    }
    if (params_.connect_radius > 0) {
      // Cross-point edges, each point pair visited once via point < other.
      for (VertexId other : connect_balls_[point]) {
        if (other <= point) continue;
        for (NodeId a : here) {
          for (NodeId b : occupants_[other]) snapshot_.add_edge(a, b);
        }
      }
    }
  };
  if (sparse) {
    for (VertexId point : touched_) emit_point(point);
  } else {
    for (VertexId point = 0; point < occupants_.size(); ++point) {
      if (!occupants_[point].empty()) emit_point(point);
    }
  }
}

void RandomWalkModel::step() {
  for (NodeId agent = 0; agent < num_mobile_; ++agent) {
    auto& pos = positions_[agent];
    const auto& ball = move_balls_[pos];
    const std::uint64_t choice = rng_.uniform_int(ball.size() + 1);
    if (choice < ball.size()) pos = ball[choice];
    // else: stay put (the self-loop option)
  }
  // Agents in [num_mobile_, n) are static and never move.
  rebuild_snapshot();
  advance_clock();
}

void RandomWalkModel::reset(std::uint64_t seed) {
  rng_.reseed(seed);
  reset_clock();
  initialize();
}

void RandomWalkModel::set_all_positions(VertexId point) {
  if (point >= graph_->num_vertices()) {
    throw std::out_of_range("set_all_positions: point out of range");
  }
  for (auto& pos : positions_) pos = point;
  rebuild_snapshot();
}

}  // namespace megflood
