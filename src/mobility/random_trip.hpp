#pragma once

// The random trip model of Le Boudec-Vojnovic [24], the general class the
// paper's Corollary 4 is stated for: nodes move over a bounded connected
// region R ⊂ R^2 along trips chosen by an arbitrary policy (destination,
// speed, and an optional pause at the waypoint).  RandomWaypointModel is
// the special case "uniform destination over a square, no pause"; this
// generalization exercises the rest of the class:
//   * pause times (the classic RWP variant with think times),
//   * non-square regions (disk),
//   * biased destination laws.
// Corollary 4 only cares about the positional density F_T (conditions
// (a)/(b)) and the mixing time, so these variants are the natural
// ablations of the paper's generality claim (bench_a4).

#include <cstdint>
#include <memory>
#include <vector>

#include "core/dynamic_graph.hpp"
#include "geometry/point.hpp"
#include "geometry/square_grid.hpp"
#include "mobility/proximity_engine.hpp"
#include "util/rng.hpp"

namespace megflood {

struct Trip {
  Point2D destination;
  double speed = 0.0;
  std::uint64_t pause_rounds = 0;  // dwell time at the waypoint on arrival
};

// A trip policy defines the mobility region and the trip law.  Policies
// must be deterministic functions of (from, rng) so models stay
// reproducible.
class TripPolicy {
 public:
  virtual ~TripPolicy() = default;

  // Side length of the bounding square [0, side]^2 containing the region.
  virtual double bounding_side() const = 0;

  // Whether p lies inside the mobility region.
  virtual bool contains(const Point2D& p) const = 0;

  // A point sampled from the region (used for initialization).
  virtual Point2D random_point(Rng& rng) const = 0;

  // The next trip from `from`; the destination must be inside the region.
  virtual Trip next_trip(const Point2D& from, Rng& rng) const = 0;

  // Largest speed the policy can emit (for warmup heuristics).
  virtual double max_speed() const = 0;
};

// Uniform-destination waypoint over the square with optional pauses:
// pause_rounds uniform in [pause_lo, pause_hi].
class SquareWaypointPolicy : public TripPolicy {
 public:
  SquareWaypointPolicy(double side, double v_min, double v_max,
                       std::uint64_t pause_lo = 0, std::uint64_t pause_hi = 0);

  double bounding_side() const override { return side_; }
  bool contains(const Point2D& p) const override;
  Point2D random_point(Rng& rng) const override;
  Trip next_trip(const Point2D& from, Rng& rng) const override;
  double max_speed() const override { return v_max_; }

 private:
  double side_, v_min_, v_max_;
  std::uint64_t pause_lo_, pause_hi_;
};

// Uniform-destination waypoint over the disk inscribed in the bounding
// square (center (side/2, side/2), radius side/2).
class DiskWaypointPolicy : public TripPolicy {
 public:
  DiskWaypointPolicy(double side, double v_min, double v_max);

  double bounding_side() const override { return side_; }
  bool contains(const Point2D& p) const override;
  Point2D random_point(Rng& rng) const override;
  Trip next_trip(const Point2D& from, Rng& rng) const override;
  double max_speed() const override { return v_max_; }

 private:
  double side_, v_min_, v_max_;
};

// Random direction model (Camp et al. [7], another classic member of the
// random trip class): instead of a waypoint, the node picks a uniform
// direction and a travel distance; legs that would exit the square are
// truncated at the border (a standard border-handling rule), where a new
// direction is drawn.  Its positional density is much flatter than the
// waypoint's (no center bias) — a useful contrast for Corollary 4's
// uniformity conditions.
class RandomDirectionPolicy : public TripPolicy {
 public:
  // Travel distance per leg uniform in [leg_lo, leg_hi].
  RandomDirectionPolicy(double side, double v_min, double v_max,
                        double leg_lo, double leg_hi);

  double bounding_side() const override { return side_; }
  bool contains(const Point2D& p) const override;
  Point2D random_point(Rng& rng) const override;
  Trip next_trip(const Point2D& from, Rng& rng) const override;
  double max_speed() const override { return v_max_; }

 private:
  double side_, v_min_, v_max_, leg_lo_, leg_hi_;
};

// The generic random trip dynamic graph: agents follow policy trips;
// two agents are connected iff their (grid-snapped) Euclidean distance is
// at most `radius`.
class RandomTripModel final : public DynamicGraph {
 public:
  RandomTripModel(std::size_t num_agents, std::shared_ptr<const TripPolicy>,
                  double radius, std::size_t resolution, std::uint64_t seed);

  std::size_t num_nodes() const override { return num_agents_; }
  const Snapshot& snapshot() const override { return engine_.snapshot(); }
  void step() override;
  void reset(std::uint64_t seed) override;

  const SquareGrid& grid() const noexcept { return grid_; }
  Point2D agent_position(NodeId agent) const { return agents_.at(agent).pos; }
  CellId agent_cell(NodeId agent) const { return engine_.cell(agent); }
  bool agent_paused(NodeId agent) const {
    return agents_.at(agent).pause_left > 0;
  }

  // c * bounding_side / max_speed rounds, like the waypoint heuristic.
  // The static overload lets the scenario layer answer --warmup=auto
  // without constructing a model.
  static std::uint64_t suggested_warmup(const TripPolicy& policy,
                                        double c = 4.0);
  std::uint64_t suggested_warmup(double c = 4.0) const;

 private:
  struct AgentState {
    Point2D pos;
    Trip trip;
    std::uint64_t pause_left = 0;
  };

  void initialize();
  void snap_cells();  // agents_ -> engine_.cells()

  std::size_t num_agents_;
  std::shared_ptr<const TripPolicy> policy_;
  SquareGrid grid_;
  Rng rng_;
  std::vector<AgentState> agents_;
  ProximitySnapshotEngine engine_;
};

}  // namespace megflood
