#include "mobility/random_paths.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <map>
#include <set>
#include <stdexcept>

namespace megflood {

// ---------------------------------------------------------------------------
// PathFamily
// ---------------------------------------------------------------------------

void PathFamily::build_index(std::size_t num_vertices) {
  starting_at.assign(num_vertices, {});
  for (std::uint32_t p = 0; p < paths.size(); ++p) {
    starting_at.at(paths[p].front()).push_back(p);
  }
}

PathFamily edges_path_family(const Graph& h) {
  PathFamily family;
  for (VertexId u = 0; u < h.num_vertices(); ++u) {
    for (VertexId v : h.neighbors(u)) {
      family.paths.push_back({u, v});
    }
  }
  family.build_index(h.num_vertices());
  return family;
}

void validate_path_family(const Graph& h, const PathFamily& family) {
  if (family.paths.empty()) {
    throw std::invalid_argument("path family: empty");
  }
  for (const auto& path : family.paths) {
    if (path.size() < 2) {
      throw std::invalid_argument("path family: path with < 2 points");
    }
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      if (!h.has_edge(path[i], path[i + 1])) {
        throw std::invalid_argument("path family: hop is not an edge of H");
      }
    }
  }
  if (family.starting_at.size() != h.num_vertices()) {
    throw std::invalid_argument("path family: index not built");
  }
  // Closure: every path's end point must start some path (the paper's
  // feasibility property), otherwise an agent gets stuck.
  for (const auto& path : family.paths) {
    if (family.starting_at.at(path.back()).empty()) {
      throw std::invalid_argument("path family: dead-end at a path end point");
    }
  }
}

bool is_simple(const PathFamily& family) {
  std::set<VertexId> seen;
  for (const auto& path : family.paths) {
    seen.clear();
    // Interior points (and the start) must be distinct; the end may close
    // a cycle back to the start.
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      if (!seen.insert(path[i]).second) return false;
    }
    const VertexId last = path.back();
    if (seen.contains(last) && last != path.front()) return false;
    if (path.size() >= 2 && last == path.front() && path.size() == 2) {
      return false;  // would need a self loop in H
    }
  }
  return true;
}

bool is_reversible(const PathFamily& family) {
  std::set<std::vector<VertexId>> all(family.paths.begin(),
                                      family.paths.end());
  for (const auto& path : family.paths) {
    std::vector<VertexId> rev(path.rbegin(), path.rend());
    if (!all.contains(rev)) return false;
  }
  return true;
}

std::vector<std::uint64_t> path_congestion(const PathFamily& family,
                                           std::size_t num_vertices) {
  std::vector<std::uint64_t> counts(num_vertices, 0);
  for (const auto& path : family.paths) {
    // "Passes through": h_i = u for some 2 <= i <= l(h).
    for (std::size_t i = 1; i < path.size(); ++i) {
      ++counts.at(path[i]);
    }
  }
  return counts;
}

double path_regularity_delta(const PathFamily& family,
                             std::size_t num_vertices) {
  const auto counts = path_congestion(family, num_vertices);
  std::uint64_t max_c = 0, sum = 0;
  for (std::uint64_t c : counts) {
    max_c = std::max(max_c, c);
    sum += c;
  }
  if (sum == 0) return 0.0;
  const double avg = static_cast<double>(sum) / static_cast<double>(num_vertices);
  return static_cast<double>(max_c) / avg;
}

// ---------------------------------------------------------------------------
// ExplicitPathsModel
// ---------------------------------------------------------------------------

ExplicitPathsModel::ExplicitPathsModel(
    std::shared_ptr<const Graph> mobility_graph, PathFamily family,
    std::size_t num_agents, std::uint64_t seed)
    : graph_(std::move(mobility_graph)),
      family_(std::move(family)),
      num_agents_(num_agents),
      rng_(seed) {
  if (!graph_) throw std::invalid_argument("ExplicitPathsModel: null graph");
  if (num_agents < 2) {
    throw std::invalid_argument("ExplicitPathsModel: need at least 2 agents");
  }
  validate_path_family(*graph_, family_);

  // Prefix sums of per-path state counts (l(h) - 1) for uniform sampling
  // over the chain states (h, h_i), 2 <= i <= l(h).
  state_prefix_.resize(family_.paths.size());
  std::uint64_t acc = 0;
  for (std::size_t p = 0; p < family_.paths.size(); ++p) {
    acc += family_.paths[p].size() - 1;
    state_prefix_[p] = acc;
  }

  agents_.resize(num_agents_);
  occupants_.resize(graph_->num_vertices());
  snapshot_.reset(num_agents_);
  initialize();
}

VertexId ExplicitPathsModel::agent_position(NodeId agent) const {
  const AgentState& a = agents_.at(agent);
  return family_.paths[a.path][a.index];
}

void ExplicitPathsModel::initialize() {
  const std::uint64_t total_states = state_prefix_.back();
  for (auto& a : agents_) {
    const std::uint64_t pick = rng_.uniform_int(total_states);
    const auto it =
        std::upper_bound(state_prefix_.begin(), state_prefix_.end(), pick);
    const auto path = static_cast<std::uint32_t>(it - state_prefix_.begin());
    const std::uint64_t before = path == 0 ? 0 : state_prefix_[path - 1];
    a.path = path;
    a.index = static_cast<std::uint32_t>(1 + (pick - before));
  }
  rebuild_snapshot();
}

void ExplicitPathsModel::step() {
  for (auto& a : agents_) {
    const auto& path = family_.paths[a.path];
    if (a.index + 1 < path.size()) {
      ++a.index;
    } else {
      // At h_l: jump to a uniform path h' in P(end) and move to h'_2.
      const auto& candidates = family_.starting_at[path.back()];
      a.path = candidates[rng_.uniform_int(candidates.size())];
      a.index = 1;
    }
  }
  rebuild_snapshot();
  advance_clock();
}

void ExplicitPathsModel::rebuild_snapshot() {
  snapshot_.clear();
  // Sparse occupancy (points >> agents): clear and scan only the occupied
  // points (sorted, to keep the edge order of a full-range scan); dense
  // occupancy: the plain scan beats sorting a touched list.  The mode is
  // fixed per instance, so the touched_ invariant (it records every
  // non-empty list) holds across steps in sparse mode.
  const bool sparse = occupants_.size() > 4 * num_agents_;
  if (sparse) {
    for (VertexId point : touched_) occupants_[point].clear();
  } else {
    for (auto& o : occupants_) o.clear();
  }
  touched_.clear();
  for (NodeId agent = 0; agent < num_agents_; ++agent) {
    auto& here = occupants_[agent_position(agent)];
    if (sparse && here.empty()) touched_.push_back(agent_position(agent));
    here.push_back(agent);
  }
  std::sort(touched_.begin(), touched_.end());
  auto emit_point = [&](VertexId point) {
    const auto& here = occupants_[point];
    for (std::size_t a = 0; a < here.size(); ++a) {
      for (std::size_t b = a + 1; b < here.size(); ++b) {
        snapshot_.add_edge(here[a], here[b]);
      }
    }
  };
  if (sparse) {
    for (VertexId point : touched_) emit_point(point);
  } else {
    for (VertexId point = 0; point < occupants_.size(); ++point) {
      if (!occupants_[point].empty()) emit_point(point);
    }
  }
}

void ExplicitPathsModel::reset(std::uint64_t seed) {
  rng_.reseed(seed);
  reset_clock();
  initialize();
}

// ---------------------------------------------------------------------------
// GridLPathsModel
// ---------------------------------------------------------------------------

GridLPathsModel::GridLPathsModel(std::size_t side, std::size_t num_agents,
                                 std::uint32_t connect_radius,
                                 std::uint64_t seed)
    : side_(side),
      num_agents_(num_agents),
      connect_radius_(connect_radius),
      rng_(seed) {
  if (side < 2) throw std::invalid_argument("GridLPathsModel: side must be >= 2");
  if (num_agents < 2) {
    throw std::invalid_argument("GridLPathsModel: need at least 2 agents");
  }
  if (side > 0xffff) {
    throw std::invalid_argument("GridLPathsModel: side too large");
  }
  // Forward half of the L1 disc (excluding origin) so cross-point pairs
  // are visited once.
  const auto r = static_cast<std::int32_t>(connect_radius_);
  for (std::int32_t dr = 0; dr <= r; ++dr) {
    for (std::int32_t dc = -r; dc <= r; ++dc) {
      if (std::abs(dr) + std::abs(dc) > r) continue;
      if (dr > 0 || (dr == 0 && dc > 0)) radius_offsets_.emplace_back(dr, dc);
    }
  }
  agents_.resize(num_agents_);
  occupants_.resize(side_ * side_);
  snapshot_.reset(num_agents_);
  initialize();
}

VertexId GridLPathsModel::agent_position(NodeId agent) const {
  return point_of(agents_.at(agent));
}

void GridLPathsModel::new_trip(AgentState& a) {
  // Uniform over the paths in P(u): sample (dst, bend) uniformly and
  // reject the duplicate (aligned, y-first) combination, which leaves
  // aligned destinations with their single path and the rest with two.
  const std::uint64_t points = side_ * side_;
  for (;;) {
    const std::uint64_t pick = rng_.uniform_int(points);
    const auto dr = static_cast<std::uint16_t>(pick / side_);
    const auto dc = static_cast<std::uint16_t>(pick % side_);
    if (dr == a.row && dc == a.col) continue;  // need dst != src
    const bool aligned = dr == a.row || dc == a.col;
    const Bend bend = rng_.bernoulli(0.5) ? Bend::kXFirst : Bend::kYFirst;
    if (aligned && bend == Bend::kYFirst) continue;  // duplicate path
    a.dest_row = dr;
    a.dest_col = dc;
    a.bend = aligned ? Bend::kXFirst : bend;
    return;
  }
}

void GridLPathsModel::advance(AgentState& a) {
  auto step_toward = [](std::uint16_t cur, std::uint16_t dst) {
    return static_cast<std::uint16_t>(cur < dst ? cur + 1 : cur - 1);
  };
  if (a.bend == Bend::kXFirst) {
    if (a.col != a.dest_col) {
      a.col = step_toward(a.col, a.dest_col);
    } else {
      a.row = step_toward(a.row, a.dest_row);
    }
  } else {
    if (a.row != a.dest_row) {
      a.row = step_toward(a.row, a.dest_row);
    } else {
      a.col = step_toward(a.col, a.dest_col);
    }
  }
}

void GridLPathsModel::initialize() {
  // Uniform over the chain states (h, h_i), i >= 2 (the exact stationary
  // distribution for this simple + reversible family): rejection-sample a
  // path proportionally to its state count l(h) - 1 = L1(src, dst), then
  // a uniform position along it.
  const std::uint64_t points = side_ * side_;
  const auto max_l1 = static_cast<double>(2 * (side_ - 1));
  for (auto& a : agents_) {
    for (;;) {
      const std::uint64_t src_pick = rng_.uniform_int(points);
      const std::uint64_t dst_pick = rng_.uniform_int(points);
      if (src_pick == dst_pick) continue;
      const auto sr = static_cast<std::uint16_t>(src_pick / side_);
      const auto sc = static_cast<std::uint16_t>(src_pick % side_);
      const auto dr = static_cast<std::uint16_t>(dst_pick / side_);
      const auto dc = static_cast<std::uint16_t>(dst_pick % side_);
      const bool aligned = sr == dr || sc == dc;
      const Bend bend = rng_.bernoulli(0.5) ? Bend::kXFirst : Bend::kYFirst;
      if (aligned && bend == Bend::kYFirst) continue;
      const auto l1 = static_cast<std::uint64_t>(
          std::abs(static_cast<int>(sr) - static_cast<int>(dr)) +
          std::abs(static_cast<int>(sc) - static_cast<int>(dc)));
      if (!rng_.bernoulli(static_cast<double>(l1) / max_l1)) continue;
      // Walk t hops from src along the chosen path, t uniform in [1, l1].
      const std::uint64_t t = 1 + rng_.uniform_int(l1);
      a.row = sr;
      a.col = sc;
      a.dest_row = dr;
      a.dest_col = dc;
      a.bend = aligned ? Bend::kXFirst : bend;
      for (std::uint64_t h = 0; h < t; ++h) advance(a);
      break;
    }
  }
  rebuild_snapshot();
}

void GridLPathsModel::step() {
  for (auto& a : agents_) {
    if (a.row == a.dest_row && a.col == a.dest_col) {
      new_trip(a);  // at h_l: switch path, then take the first hop
    }
    advance(a);
  }
  rebuild_snapshot();
  advance_clock();
}

void GridLPathsModel::rebuild_snapshot() {
  snapshot_.clear();
  // Same adaptive occupancy scheme as ExplicitPathsModel: occupied-cell
  // list (sorted, reproducing the full-grid scan's edge order) when cells
  // far outnumber agents, plain full scan otherwise.
  const bool sparse = occupants_.size() > 4 * num_agents_;
  if (sparse) {
    for (VertexId cell : touched_) occupants_[cell].clear();
  } else {
    for (auto& o : occupants_) o.clear();
  }
  touched_.clear();
  for (NodeId agent = 0; agent < num_agents_; ++agent) {
    auto& here = occupants_[point_of(agents_[agent])];
    if (sparse && here.empty()) touched_.push_back(point_of(agents_[agent]));
    here.push_back(agent);
  }
  std::sort(touched_.begin(), touched_.end());
  const auto s = static_cast<std::int32_t>(side_);
  auto emit_cell = [&](VertexId cell) {
    const auto r = static_cast<std::int32_t>(cell / side_);
    const auto c = static_cast<std::int32_t>(cell % side_);
    const auto& here = occupants_[cell];
    for (std::size_t a = 0; a < here.size(); ++a) {
      for (std::size_t b = a + 1; b < here.size(); ++b) {
        snapshot_.add_edge(here[a], here[b]);
      }
    }
    for (const auto& [dr, dc] : radius_offsets_) {
      const std::int32_t rr = r + dr, cc = c + dc;
      if (rr < 0 || rr >= s || cc < 0 || cc >= s) continue;
      const auto& there = occupants_[static_cast<std::size_t>(rr * s + cc)];
      for (NodeId a : here) {
        for (NodeId b : there) snapshot_.add_edge(a, b);
      }
    }
  };
  if (sparse) {
    for (VertexId cell : touched_) emit_cell(cell);
  } else {
    for (VertexId cell = 0; cell < occupants_.size(); ++cell) {
      if (!occupants_[cell].empty()) emit_cell(cell);
    }
  }
}

void GridLPathsModel::reset(std::uint64_t seed) {
  rng_.reseed(seed);
  reset_clock();
  initialize();
}

std::vector<std::uint64_t> GridLPathsModel::congestion(std::size_t side) {
  const std::size_t points = side * side;
  std::vector<std::uint64_t> counts(points, 0);
  // Enumerate every path (src, dst, bend) and mark its points except the
  // start.  An L-path x-first covers row-segment (sr, sc..dc) then
  // column-segment (sr..dr, dc); the corner is counted once.
  for (std::size_t src = 0; src < points; ++src) {
    const auto sr = static_cast<std::int64_t>(src / side);
    const auto sc = static_cast<std::int64_t>(src % side);
    for (std::size_t dst = 0; dst < points; ++dst) {
      if (src == dst) continue;
      const auto dr = static_cast<std::int64_t>(dst / side);
      const auto dc = static_cast<std::int64_t>(dst % side);
      const bool aligned = sr == dr || sc == dc;
      for (int bend = 0; bend < (aligned ? 1 : 2); ++bend) {
        if (bend == 0) {  // x-first
          const std::int64_t step_c = dc > sc ? 1 : -1;
          for (std::int64_t c = sc + step_c; c != dc + step_c && sc != dc;
               c += step_c) {
            ++counts[static_cast<std::size_t>(sr * static_cast<std::int64_t>(side) + c)];
          }
          const std::int64_t step_r = dr > sr ? 1 : -1;
          for (std::int64_t r = sr + step_r; r != dr + step_r && sr != dr;
               r += step_r) {
            ++counts[static_cast<std::size_t>(r * static_cast<std::int64_t>(side) + dc)];
          }
        } else {  // y-first
          const std::int64_t step_r = dr > sr ? 1 : -1;
          for (std::int64_t r = sr + step_r; r != dr + step_r && sr != dr;
               r += step_r) {
            ++counts[static_cast<std::size_t>(r * static_cast<std::int64_t>(side) + sc)];
          }
          const std::int64_t step_c = dc > sc ? 1 : -1;
          for (std::int64_t c = sc + step_c; c != dc + step_c && sc != dc;
               c += step_c) {
            ++counts[static_cast<std::size_t>(dr * static_cast<std::int64_t>(side) + c)];
          }
        }
      }
    }
  }
  return counts;
}

double GridLPathsModel::regularity_delta(std::size_t side) {
  const auto counts = congestion(side);
  std::uint64_t max_c = 0, sum = 0;
  for (std::uint64_t c : counts) {
    max_c = std::max(max_c, c);
    sum += c;
  }
  const double avg =
      static_cast<double>(sum) / static_cast<double>(counts.size());
  return avg > 0.0 ? static_cast<double>(max_c) / avg : 0.0;
}

}  // namespace megflood
