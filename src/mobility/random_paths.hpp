#pragma once

// The random paths mobility model (paper Section 4.1, "Graph Mobility
// Models"): the model is a pair RP = (H, P) of a mobility graph H(V, A)
// and a family P of feasible paths such that every path's end point starts
// some other path.  An agent at the end of a path picks a new path
// uniformly from P(end) and travels it one edge per time step.  Agents are
// connected iff they occupy the same point.
//
// The node-MEG chain M_RP has states (h, h_i) for h in P, 2 <= i <= l(h);
// when RP is simple and reversible its stationary distribution is uniform
// over states (via the Markov Trace Model, [14] Thm 11), which both
// implementations use for exact stationary initialization.
//
// Two implementations:
//  * ExplicitPathsModel — the family is an explicit list of paths (tests,
//    small models, the "edges of H" family that recovers the random walk).
//  * GridLPathsModel    — the implicit family of L-shaped (x-first /
//    y-first) shortest paths between all pairs of an s x s grid, the
//    paper's basic instance "H is a grid and the feasible paths are the
//    shortest ones"; supports an optional hop connection radius, which
//    also covers the Manhattan random waypoint variant of [13].

#include <cstdint>
#include <memory>
#include <vector>

#include "core/dynamic_graph.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace megflood {

// ---------------------------------------------------------------------------
// Explicit path families
// ---------------------------------------------------------------------------

struct PathFamily {
  // Each path is a sequence of >= 2 vertices of the mobility graph, every
  // consecutive pair an edge of H (validated by validate()).
  std::vector<std::vector<VertexId>> paths;

  // Indices of paths starting at each vertex.
  std::vector<std::vector<std::uint32_t>> starting_at;

  void build_index(std::size_t num_vertices);
};

// The family of all directed edges of H as 2-point paths; the resulting
// random paths model is exactly the (non-lazy) random walk on H.
PathFamily edges_path_family(const Graph& h);

// Validation / structural predicates from the paper.
// Throws std::invalid_argument on malformed families (empty paths, non-edge
// hops, dead-end endpoints).
void validate_path_family(const Graph& h, const PathFamily& family);

// Simple: no path visits a point twice (start == end allowed).
bool is_simple(const PathFamily& family);

// Reversible: the reverse of every path is in the family.
bool is_reversible(const PathFamily& family);

// #P(u) for every point u: number of paths passing through u, i.e.
// h_i = u for some 2 <= i <= l(h) (start excluded, end included).
std::vector<std::uint64_t> path_congestion(const PathFamily& family,
                                           std::size_t num_vertices);

// delta-regularity of the family: max_u #P(u) / (avg_v #P(v)).
double path_regularity_delta(const PathFamily& family,
                             std::size_t num_vertices);

class ExplicitPathsModel final : public DynamicGraph {
 public:
  // Requires a validated family over `mobility_graph`; initial agent
  // states are uniform over the chain states (exact stationary start for
  // simple + reversible families).
  ExplicitPathsModel(std::shared_ptr<const Graph> mobility_graph,
                     PathFamily family, std::size_t num_agents,
                     std::uint64_t seed);

  std::size_t num_nodes() const override { return num_agents_; }
  const Snapshot& snapshot() const override { return snapshot_; }
  void step() override;
  void reset(std::uint64_t seed) override;

  const Graph& mobility_graph() const noexcept { return *graph_; }
  const PathFamily& family() const noexcept { return family_; }
  VertexId agent_position(NodeId agent) const;

 private:
  struct AgentState {
    std::uint32_t path = 0;
    std::uint32_t index = 1;  // 0-based position in the path, >= 1
  };

  void initialize();
  void rebuild_snapshot();

  std::shared_ptr<const Graph> graph_;
  PathFamily family_;
  std::size_t num_agents_;
  Rng rng_;
  // Cumulative (l(h) - 1) weights for uniform chain-state sampling.
  std::vector<std::uint64_t> state_prefix_;
  std::vector<AgentState> agents_;
  std::vector<std::vector<NodeId>> occupants_;
  std::vector<VertexId> touched_;  // occupied points, sorted per rebuild
  Snapshot snapshot_;
};

// ---------------------------------------------------------------------------
// Implicit L-paths on a grid
// ---------------------------------------------------------------------------

class GridLPathsModel final : public DynamicGraph {
 public:
  // s x s grid; agents travel L-shaped shortest paths (x-first or y-first
  // legs) between uniformly chosen endpoints; connected iff L1 hop
  // distance <= connect_radius (0 = same point, the paper's setting).
  GridLPathsModel(std::size_t side, std::size_t num_agents,
                  std::uint32_t connect_radius, std::uint64_t seed);

  std::size_t num_nodes() const override { return num_agents_; }
  const Snapshot& snapshot() const override { return snapshot_; }
  void step() override;
  void reset(std::uint64_t seed) override;

  std::size_t side() const noexcept { return side_; }
  std::size_t num_points() const noexcept { return side_ * side_; }
  VertexId agent_position(NodeId agent) const;

  // Exact #P(u) congestion of the full L-path family by enumeration, and
  // its delta-regularity (Corollary 5's condition).
  static std::vector<std::uint64_t> congestion(std::size_t side);
  static double regularity_delta(std::size_t side);

 private:
  enum class Bend : std::uint8_t { kXFirst, kYFirst };

  struct AgentState {
    std::uint16_t row = 0, col = 0;            // current point
    std::uint16_t dest_row = 0, dest_col = 0;  // trip destination
    Bend bend = Bend::kXFirst;
  };

  void initialize();
  void new_trip(AgentState& a);
  void advance(AgentState& a);
  void rebuild_snapshot();
  VertexId point_of(const AgentState& a) const {
    return static_cast<VertexId>(a.row * side_ + a.col);
  }

  std::size_t side_;
  std::size_t num_agents_;
  std::uint32_t connect_radius_;
  Rng rng_;
  std::vector<AgentState> agents_;
  std::vector<std::vector<NodeId>> occupants_;
  std::vector<VertexId> touched_;  // occupied cells, sorted per rebuild
  std::vector<std::pair<std::int32_t, std::int32_t>> radius_offsets_;
  Snapshot snapshot_;
};

}  // namespace megflood
