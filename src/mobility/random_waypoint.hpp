#pragma once

// The random waypoint model over a square (paper Section 4.1): each of the
// n agents repeatedly (i) picks a destination uniformly at random over the
// square, (ii) picks a speed uniformly in [v_min, v_max], and (iii) travels
// in a straight line to the destination at that speed.  Two agents are
// connected iff their Euclidean distance is at most the transmission
// radius r.
//
// Discretization follows the paper: the square of side L is approximated
// by an m x m grid; an agent's *connectivity* position is its nearest grid
// point while its motion state stays continuous (equivalent to a
// sufficiently refined node-MEG state (destination, path point, speed) —
// footnote 3 says the resolution does not affect the flooding bound, and
// experiment E5 verifies that by sweeping m).
//
// Initialization is uniform-position/fresh-trip, which is *not* the
// stationary regime; callers should warm up ~Theta(L / v_max) steps
// (TrialConfig::warmup_steps) before measuring, as the experiments do.

#include <cstdint>
#include <vector>

#include "core/dynamic_graph.hpp"
#include "geometry/point.hpp"
#include "geometry/square_grid.hpp"
#include "mobility/proximity_engine.hpp"
#include "util/rng.hpp"

namespace megflood {

struct WaypointParams {
  double side_length = 1.0;  // L
  double v_min = 0.01;
  double v_max = 0.02;       // paper assumes v_max = Theta(v_min)
  double radius = 0.1;       // transmission radius r
  std::size_t resolution = 64;  // grid m (connectivity discretization)
};

class RandomWaypointModel final : public DynamicGraph {
 public:
  RandomWaypointModel(std::size_t num_agents, WaypointParams params,
                      std::uint64_t seed);

  std::size_t num_nodes() const override { return num_agents_; }
  const Snapshot& snapshot() const override { return engine_.snapshot(); }
  void step() override;
  void reset(std::uint64_t seed) override;

  const SquareGrid& grid() const noexcept { return grid_; }
  const WaypointParams& params() const noexcept { return params_; }

  Point2D agent_position(NodeId agent) const { return agents_.at(agent).pos; }
  CellId agent_cell(NodeId agent) const { return engine_.cell(agent); }

  // Rough warm-up length to near-stationarity: c * L / v_max steps
  // (T_mix of the waypoint chain is Theta(L / v_max), refs [1, 29]).
  // The static overload lets the scenario layer answer --warmup=auto
  // without constructing a model.
  static std::uint64_t suggested_warmup(const WaypointParams& params,
                                        double c = 4.0);
  std::uint64_t suggested_warmup(double c = 4.0) const;

  // Worst-case start for mixing studies: place every agent at `point`
  // (fresh random trips are drawn so the process stays well defined).
  void collapse_to(const Point2D& point);

 private:
  struct AgentState {
    Point2D pos;
    Point2D dest;
    double speed = 0.0;
  };

  void initialize();
  void new_trip(AgentState& agent);
  void snap_cells();  // agents_ -> engine_.cells()

  std::size_t num_agents_;
  WaypointParams params_;
  SquareGrid grid_;
  Rng rng_;
  std::vector<AgentState> agents_;
  ProximitySnapshotEngine engine_;
};

}  // namespace megflood
