#pragma once

// The random walk mobility model over an arbitrary mobility graph H(V, A)
// (paper Section 4.1, "Graph Mobility Models"): each of the n agents
// occupies a point of H; per time step it jumps to a point chosen uniformly
// at random among all points within rho hops of its current point
// (including staying put, which makes the move chain lazy and hence
// aperiodic).  Two agents are connected iff their points are within r hops
// (r = 0: same point — the most studied setting, and the one Corollary 6
// and the comparison with Dimitriou et al. [15] use).

#include <cstdint>
#include <memory>
#include <vector>

#include "core/dynamic_graph.hpp"
#include "graph/algorithms.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace megflood {

struct RandomWalkParams {
  std::uint32_t move_radius = 1;     // rho: hops per move
  std::uint32_t connect_radius = 0;  // r: connection range in hops
  // Fraction of agents that are mobile; the rest stay put forever (the
  // mixed static/mobile population of the "high mobility can make up for
  // low transmission power" line of work, paper reference [12]).  Mobile
  // agents are the first ceil(mobile_fraction * n) ids so experiments can
  // address the two classes deterministically.
  double mobile_fraction = 1.0;
};

class RandomWalkModel final : public DynamicGraph {
 public:
  // The mobility graph is shared so sweeps over n reuse the precomputed
  // hop balls (the dominant construction cost).
  RandomWalkModel(std::shared_ptr<const Graph> mobility_graph,
                  std::size_t num_agents, RandomWalkParams params,
                  std::uint64_t seed);

  std::size_t num_nodes() const override { return num_agents_; }
  const Snapshot& snapshot() const override { return snapshot_; }
  void step() override;
  void reset(std::uint64_t seed) override;

  const Graph& mobility_graph() const noexcept { return *graph_; }
  VertexId agent_position(NodeId agent) const { return positions_.at(agent); }

  // The move chain's stationary distribution over points:
  // pi(v) ∝ |ball_rho(v)| + 1 (the move graph is symmetric, self-loops
  // included).  Agents are initialized i.i.d. from this distribution, so
  // the process starts stationary.
  const std::vector<double>& positional_stationary() const noexcept {
    return stationary_;
  }

  // Place every agent on a fixed point (worst-case start for mixing /
  // flooding-from-cold experiments).
  void set_all_positions(VertexId point);

  bool agent_mobile(NodeId agent) const {
    return agent < num_mobile_;
  }

 private:
  void initialize();
  void rebuild_snapshot();

  std::shared_ptr<const Graph> graph_;
  std::size_t num_agents_;
  std::size_t num_mobile_;
  RandomWalkParams params_;
  Rng rng_;
  std::vector<std::vector<VertexId>> move_balls_;     // excl. center
  std::vector<std::vector<VertexId>> connect_balls_;  // excl. center
  std::vector<double> stationary_;
  std::vector<double> stationary_cdf_;
  std::vector<VertexId> positions_;
  std::vector<std::vector<NodeId>> occupants_;  // point -> agents
  // Points with a non-empty occupant list (sorted); only these are cleared
  // and scanned per rebuild, so the step cost is O(agents + edges) rather
  // than O(points).
  std::vector<VertexId> touched_;
  Snapshot snapshot_;
};

}  // namespace megflood
