#include "mobility/random_waypoint.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace megflood {

RandomWaypointModel::RandomWaypointModel(std::size_t num_agents,
                                         WaypointParams params,
                                         std::uint64_t seed)
    : num_agents_(num_agents),
      params_(params),
      grid_(params.resolution, params.side_length),
      rng_(seed),
      engine_(grid_, params.radius, num_agents) {
  if (num_agents < 2) {
    throw std::invalid_argument("RandomWaypointModel: need at least 2 agents");
  }
  if (params_.v_min <= 0.0 || params_.v_max < params_.v_min) {
    throw std::invalid_argument(
        "RandomWaypointModel: need 0 < v_min <= v_max");
  }
  agents_.resize(num_agents_);
  initialize();
}

void RandomWaypointModel::new_trip(AgentState& agent) {
  // Destination uniform over the grid points (the paper's discretization
  // of "uniform over the square"); speed uniform in [v_min, v_max].
  const auto dest_cell =
      static_cast<CellId>(rng_.uniform_int(grid_.num_points()));
  agent.dest = grid_.position(dest_cell);
  agent.speed = rng_.uniform(params_.v_min, params_.v_max);
}

void RandomWaypointModel::initialize() {
  for (auto& agent : agents_) {
    const auto cell = static_cast<CellId>(rng_.uniform_int(grid_.num_points()));
    agent.pos = grid_.position(cell);
    new_trip(agent);
  }
  snap_cells();
  engine_.rebuild();
}

void RandomWaypointModel::step() {
  for (auto& agent : agents_) {
    double budget = agent.speed;
    // Travel `speed` distance this round, switching trips at waypoints so
    // agents never stall (leftover budget carries into the new leg).
    for (int leg = 0; leg < 16 && budget > 0.0; ++leg) {
      const double dist = euclidean_distance(agent.pos, agent.dest);
      if (dist <= budget) {
        budget -= dist;
        agent.pos = agent.dest;
        new_trip(agent);
      } else {
        const double frac = budget / dist;
        agent.pos.x += (agent.dest.x - agent.pos.x) * frac;
        agent.pos.y += (agent.dest.y - agent.pos.y) * frac;
        budget = 0.0;
      }
    }
  }
  snap_cells();
  engine_.refresh();
  advance_clock();
}

void RandomWaypointModel::snap_cells() {
  std::vector<CellId>& cells = engine_.cells();
  for (NodeId i = 0; i < num_agents_; ++i) {
    cells[i] = grid_.nearest(agents_[i].pos);
  }
}

void RandomWaypointModel::reset(std::uint64_t seed) {
  rng_.reseed(seed);
  reset_clock();
  initialize();
}

void RandomWaypointModel::collapse_to(const Point2D& point) {
  for (auto& agent : agents_) {
    agent.pos = point;
    new_trip(agent);
  }
  snap_cells();
  engine_.rebuild();
}

std::uint64_t RandomWaypointModel::suggested_warmup(
    const WaypointParams& params, double c) {
  // Callable before a model exists (the scenario layer resolves
  // --warmup=auto from raw params), so it must do its own validation:
  // ceil(x / 0) would be inf and the uint64 cast undefined.
  if (params.v_max <= 0.0 || params.side_length <= 0.0) {
    throw std::invalid_argument(
        "RandomWaypointModel::suggested_warmup: need v_max > 0 and "
        "side_length > 0");
  }
  return static_cast<std::uint64_t>(
      std::ceil(c * params.side_length / params.v_max));
}

std::uint64_t RandomWaypointModel::suggested_warmup(double c) const {
  return suggested_warmup(params_, c);
}

}  // namespace megflood
