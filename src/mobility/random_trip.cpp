#include "mobility/random_trip.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace megflood {

// ---------------------------------------------------------------------------
// SquareWaypointPolicy
// ---------------------------------------------------------------------------

SquareWaypointPolicy::SquareWaypointPolicy(double side, double v_min,
                                           double v_max,
                                           std::uint64_t pause_lo,
                                           std::uint64_t pause_hi)
    : side_(side),
      v_min_(v_min),
      v_max_(v_max),
      pause_lo_(pause_lo),
      pause_hi_(pause_hi) {
  if (side <= 0.0) {
    throw std::invalid_argument("SquareWaypointPolicy: side must be > 0");
  }
  if (v_min <= 0.0 || v_max < v_min) {
    throw std::invalid_argument("SquareWaypointPolicy: need 0 < v_min <= v_max");
  }
  if (pause_hi < pause_lo) {
    throw std::invalid_argument("SquareWaypointPolicy: pause_hi < pause_lo");
  }
}

bool SquareWaypointPolicy::contains(const Point2D& p) const {
  return p.x >= 0.0 && p.x <= side_ && p.y >= 0.0 && p.y <= side_;
}

Point2D SquareWaypointPolicy::random_point(Rng& rng) const {
  return {rng.uniform(0.0, side_), rng.uniform(0.0, side_)};
}

Trip SquareWaypointPolicy::next_trip(const Point2D& /*from*/, Rng& rng) const {
  Trip trip;
  trip.destination = random_point(rng);
  trip.speed = rng.uniform(v_min_, v_max_);
  trip.pause_rounds =
      pause_lo_ +
      (pause_hi_ > pause_lo_ ? rng.uniform_int(pause_hi_ - pause_lo_ + 1)
                             : 0);
  return trip;
}

// ---------------------------------------------------------------------------
// DiskWaypointPolicy
// ---------------------------------------------------------------------------

DiskWaypointPolicy::DiskWaypointPolicy(double side, double v_min, double v_max)
    : side_(side), v_min_(v_min), v_max_(v_max) {
  if (side <= 0.0) {
    throw std::invalid_argument("DiskWaypointPolicy: side must be > 0");
  }
  if (v_min <= 0.0 || v_max < v_min) {
    throw std::invalid_argument("DiskWaypointPolicy: need 0 < v_min <= v_max");
  }
}

bool DiskWaypointPolicy::contains(const Point2D& p) const {
  const double r = side_ / 2.0;
  const double dx = p.x - r, dy = p.y - r;
  return dx * dx + dy * dy <= r * r + 1e-12;
}

Point2D DiskWaypointPolicy::random_point(Rng& rng) const {
  // Rejection from the bounding square: acceptance ~ pi/4.
  for (;;) {
    const Point2D p{rng.uniform(0.0, side_), rng.uniform(0.0, side_)};
    if (contains(p)) return p;
  }
}

Trip DiskWaypointPolicy::next_trip(const Point2D& /*from*/, Rng& rng) const {
  Trip trip;
  trip.destination = random_point(rng);
  trip.speed = rng.uniform(v_min_, v_max_);
  trip.pause_rounds = 0;
  return trip;
}

// ---------------------------------------------------------------------------
// RandomDirectionPolicy
// ---------------------------------------------------------------------------

RandomDirectionPolicy::RandomDirectionPolicy(double side, double v_min,
                                             double v_max, double leg_lo,
                                             double leg_hi)
    : side_(side),
      v_min_(v_min),
      v_max_(v_max),
      leg_lo_(leg_lo),
      leg_hi_(leg_hi) {
  if (side <= 0.0) {
    throw std::invalid_argument("RandomDirectionPolicy: side must be > 0");
  }
  if (v_min <= 0.0 || v_max < v_min) {
    throw std::invalid_argument(
        "RandomDirectionPolicy: need 0 < v_min <= v_max");
  }
  if (leg_lo <= 0.0 || leg_hi < leg_lo) {
    throw std::invalid_argument(
        "RandomDirectionPolicy: need 0 < leg_lo <= leg_hi");
  }
}

bool RandomDirectionPolicy::contains(const Point2D& p) const {
  return p.x >= 0.0 && p.x <= side_ && p.y >= 0.0 && p.y <= side_;
}

Point2D RandomDirectionPolicy::random_point(Rng& rng) const {
  return {rng.uniform(0.0, side_), rng.uniform(0.0, side_)};
}

Trip RandomDirectionPolicy::next_trip(const Point2D& from, Rng& rng) const {
  const double angle = rng.uniform(0.0, 2.0 * 3.14159265358979323846);
  const double leg = rng.uniform(leg_lo_, leg_hi_);
  // Truncate the leg at the square border: find the largest t <= leg with
  // from + t * dir inside the square.
  const double dx = std::cos(angle), dy = std::sin(angle);
  double t_max = leg;
  if (dx > 1e-12) t_max = std::min(t_max, (side_ - from.x) / dx);
  if (dx < -1e-12) t_max = std::min(t_max, (0.0 - from.x) / dx);
  if (dy > 1e-12) t_max = std::min(t_max, (side_ - from.y) / dy);
  if (dy < -1e-12) t_max = std::min(t_max, (0.0 - from.y) / dy);
  t_max = std::max(0.0, t_max);
  Trip trip;
  trip.destination = {from.x + t_max * dx, from.y + t_max * dy};
  // Clamp residual floating point drift back into the square.
  trip.destination.x = std::min(side_, std::max(0.0, trip.destination.x));
  trip.destination.y = std::min(side_, std::max(0.0, trip.destination.y));
  trip.speed = rng.uniform(v_min_, v_max_);
  trip.pause_rounds = 0;
  return trip;
}

// ---------------------------------------------------------------------------
// RandomTripModel
// ---------------------------------------------------------------------------

RandomTripModel::RandomTripModel(std::size_t num_agents,
                                 std::shared_ptr<const TripPolicy> policy,
                                 double radius, std::size_t resolution,
                                 std::uint64_t seed)
    : num_agents_(num_agents),
      policy_(std::move(policy)),
      grid_(resolution, policy_ ? policy_->bounding_side() : 1.0),
      rng_(seed),
      engine_(grid_, radius, num_agents) {
  if (!policy_) throw std::invalid_argument("RandomTripModel: null policy");
  if (num_agents < 2) {
    throw std::invalid_argument("RandomTripModel: need at least 2 agents");
  }
  agents_.resize(num_agents_);
  initialize();
}

void RandomTripModel::initialize() {
  for (auto& agent : agents_) {
    agent.pos = policy_->random_point(rng_);
    agent.trip = policy_->next_trip(agent.pos, rng_);
    agent.pause_left = 0;
  }
  snap_cells();
  engine_.rebuild();
}

void RandomTripModel::step() {
  for (auto& agent : agents_) {
    if (agent.pause_left > 0) {
      --agent.pause_left;
      continue;
    }
    double budget = agent.trip.speed;
    for (int leg = 0; leg < 16 && budget > 0.0; ++leg) {
      const double dist = euclidean_distance(agent.pos, agent.trip.destination);
      if (dist <= budget) {
        budget -= dist;
        agent.pos = agent.trip.destination;
        const std::uint64_t pause = agent.trip.pause_rounds;
        agent.trip = policy_->next_trip(agent.pos, rng_);
        if (pause > 0) {
          // The dwell consumes whole rounds starting now; leftover motion
          // budget is forfeited (the agent has stopped).
          agent.pause_left = pause;
          break;
        }
      } else {
        const double frac = budget / dist;
        agent.pos.x += (agent.trip.destination.x - agent.pos.x) * frac;
        agent.pos.y += (agent.trip.destination.y - agent.pos.y) * frac;
        budget = 0.0;
      }
    }
  }
  snap_cells();
  engine_.refresh();
  advance_clock();
}

void RandomTripModel::snap_cells() {
  std::vector<CellId>& cells = engine_.cells();
  for (NodeId i = 0; i < num_agents_; ++i) {
    cells[i] = grid_.nearest(agents_[i].pos);
  }
}

void RandomTripModel::reset(std::uint64_t seed) {
  rng_.reseed(seed);
  reset_clock();
  initialize();
}

std::uint64_t RandomTripModel::suggested_warmup(const TripPolicy& policy,
                                                double c) {
  // The stock policies validate speeds in their constructors, but the
  // interface does not promise it — guard the division like the waypoint
  // static does.
  if (policy.max_speed() <= 0.0 || policy.bounding_side() <= 0.0) {
    throw std::invalid_argument(
        "RandomTripModel::suggested_warmup: need max_speed > 0 and "
        "bounding_side > 0");
  }
  return static_cast<std::uint64_t>(
      std::ceil(c * policy.bounding_side() / policy.max_speed()));
}

std::uint64_t RandomTripModel::suggested_warmup(double c) const {
  return suggested_warmup(*policy_, c);
}

}  // namespace megflood
