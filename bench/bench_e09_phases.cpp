// Experiment E9 — the proof machinery of Theorem 1 (Lemmas 11-14).
//
// Lemma 11/13 (spreading phase): while |I_t| < n/2 the informed set
// doubles every T = O((1/(n alpha) + beta)^2 log n) epochs, so the
// spreading phase takes O(log n) doubling intervals.
// Lemma 12/14 (saturation phase): from n/2 to n takes only
// O((1/(n alpha) + beta) log n) epochs — one (1/(n alpha) + beta) * log n
// factor cheaper than spreading.
//
// We instrument full |I_t| trajectories on a sparse edge-MEG and on the
// random waypoint and report: rounds to reach each doubling milestone,
// the max doubling interval, and the spreading/saturation split.

#include <algorithm>
#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "core/flooding.hpp"
#include "core/trial.hpp"
#include "meg/edge_meg.hpp"
#include "mobility/random_waypoint.hpp"
#include "util/table.hpp"

namespace megflood {
namespace {

// Rounds at which |I_t| first reaches 2, 4, 8, ..., n/2, n.
std::vector<std::uint64_t> milestones(const FloodResult& r, std::size_t n) {
  std::vector<std::uint64_t> times;
  std::size_t target = 2;
  for (std::size_t t = 0; t < r.informed_counts.size(); ++t) {
    while (r.informed_counts[t] >= target && target <= n) {
      times.push_back(t);
      target *= 2;
    }
  }
  return times;
}

template <typename Factory>
void run_model(const std::string& name, std::size_t n, Factory&& factory,
               std::uint64_t warmup) {
  std::cout << "\n-- model: " << name << " (n = " << n << ") --\n";
  constexpr std::size_t kTrials = 12;
  // This harness needs the full |I_t| trajectory of every trial (the
  // doubling milestones), which Measurement does not carry, so it drives
  // flood() directly — but trial seeds come from the same derive_seeds
  // expansion the measure() harness uses.
  const auto seeds = derive_seeds(/*master=*/13, kTrials);
  std::vector<double> spreading, saturation, max_doubling;
  std::vector<std::vector<double>> milestone_samples;
  for (std::uint64_t trial = 0; trial < kTrials; ++trial) {
    auto model = factory(seeds[trial]);
    for (std::uint64_t w = 0; w < warmup; ++w) model->step();
    const FloodResult r = flood(*model, 0, 4'000'000);
    if (!r.completed) {
      std::cout << "WARNING: incomplete trial " << trial << "\n";
      continue;
    }
    const PhaseSplit split = split_phases(r, n);
    spreading.push_back(static_cast<double>(split.spreading_rounds));
    saturation.push_back(static_cast<double>(split.saturation_rounds));
    const auto times = milestones(r, n);
    if (milestone_samples.size() < times.size()) {
      milestone_samples.resize(times.size());
    }
    double worst_gap = 0.0;
    for (std::size_t i = 0; i < times.size(); ++i) {
      milestone_samples[i].push_back(static_cast<double>(times[i]));
      const double gap = static_cast<double>(
          times[i] - (i == 0 ? 0 : times[i - 1]));
      // Only count doubling gaps inside the spreading phase.
      if ((2ULL << i) <= n) worst_gap = std::max(worst_gap, gap);
    }
    max_doubling.push_back(worst_gap);
  }

  Table table({"milestone |I_t| >=", "rounds mean", "rounds p90"});
  std::size_t target = 2;
  for (const auto& samples : milestone_samples) {
    const Summary s = summarize(samples);
    table.add_row({Table::integer(static_cast<long long>(std::min(target, n))),
                   Table::num(s.mean, 1), Table::num(s.p90, 1)});
    target *= 2;
  }
  table.print(std::cout);

  const Summary sp = summarize(spreading);
  const Summary sa = summarize(saturation);
  const Summary dbl = summarize(max_doubling);
  std::cout << "spreading rounds (to n/2): mean " << Table::num(sp.mean, 1)
            << ", p90 " << Table::num(sp.p90, 1) << "\n";
  std::cout << "saturation rounds (n/2 to n): mean " << Table::num(sa.mean, 1)
            << ", p90 " << Table::num(sa.p90, 1) << "\n";
  std::cout << "max doubling interval: mean " << Table::num(dbl.mean, 1)
            << " (Lemma 11: bounded by T per doubling)\n";
  std::cout << "saturation/spreading ratio: "
            << Table::num(sa.mean / std::max(1.0, sp.mean), 2)
            << " (Lemma 14: saturation is the cheaper phase, up to the "
               "log-factor gap)\n";
}

}  // namespace
}  // namespace megflood

int main() {
  using namespace megflood;
  bench::print_header(
      "E9 / Phase structure of flooding (Lemmas 11-14)",
      "Claims: the informed set doubles every O((1/(n a)+b)^2 log n)\n"
      "epochs until n/2 (spreading), then saturates in the cheaper\n"
      "O((1/(n a)+b) log n) epochs.");

  const std::size_t n = 256;
  const double p = 1.5 / static_cast<double>(n);  // sparse: n*alpha ~ 1.5/(1+q/p)...
  run_model(
      "sparse two-state edge-MEG", n,
      [&](std::uint64_t seed) {
        return std::make_unique<TwoStateEdgeMEG>(
            n, TwoStateParams{p / 4.0, 0.4}, seed);
      },
      0);

  WaypointParams wp;
  wp.side_length = 10.0;
  wp.v_min = 0.5;
  wp.v_max = 1.0;
  wp.radius = 1.0;
  wp.resolution = 40;
  const std::size_t wn = 96;
  RandomWaypointModel warm(wn, wp, 0);
  run_model(
      "random waypoint (sparse)", wn,
      [&](std::uint64_t seed) {
        return std::make_unique<RandomWaypointModel>(wn, wp, seed);
      },
      warm.suggested_warmup());
  return 0;
}
