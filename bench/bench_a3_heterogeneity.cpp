// Ablation A3 — heterogeneous edge rates vs. the worst-edge reading of
// the Density Condition.
//
// Theorem 1 is stated through a uniform lower bound alpha on every edge
// probability.  With per-edge (p_e, q_e) the honest instantiation uses
// alpha = min_e alpha_e and M = max_e T_mix,e.  This bench measures how
// pessimistic that is: flooding on heterogeneous instances is compared
// against (i) a homogeneous model pinned at the *minimum* alpha and (ii)
// one at the *mean* alpha.  Expectation: the heterogeneous instance
// behaves like the mean, not the minimum — the worst-edge bound is valid
// but conservative, since flooding routes around slow edges.

#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "core/trial.hpp"
#include "meg/edge_meg.hpp"
#include "meg/heterogeneous_edge_meg.hpp"
#include "util/table.hpp"

int main() {
  using namespace megflood;
  bench::print_header(
      "A3 / Rate-heterogeneity ablation",
      "Heterogeneous per-edge alphas vs homogeneous models pinned at the\n"
      "minimum / mean alpha of the ensemble.");

  const std::size_t n = 96;
  TrialConfig cfg;
  cfg.trials = 16;
  cfg.max_rounds = 4'000'000;
  cfg.threads = 0;  // trial runner: one worker per hardware thread

  Table table({"alpha spread [lo,hi]", "hetero p50", "min-pinned p50",
               "mean-pinned p50", "hetero/mean", "hetero/min"});
  for (const auto& [alpha_lo, alpha_hi] :
       std::vector<std::pair<double, double>>{
           {0.010, 0.010}, {0.005, 0.015}, {0.002, 0.018}, {0.001, 0.019}}) {
    // alpha per edge uniform in [lo, hi]; edge speed lambda ~ 0.3 so all
    // edges mix in a handful of rounds.
    const double speed = 0.3;
    cfg.seed = 600 + static_cast<std::uint64_t>(alpha_hi * 10000);
    const auto hetero = measure_flooding(
        [&](std::uint64_t seed) {
          return std::make_unique<HeterogeneousEdgeMEG>(
              n,
              uniform_alpha_rates(speed, speed,
                                  std::max(1e-4, alpha_lo), alpha_hi),
              seed);
        },
        cfg);
    auto pinned = [&](double alpha) {
      return measure_flooding(
          [&](std::uint64_t seed) {
            return std::make_unique<TwoStateEdgeMEG>(
                n,
                TwoStateParams{alpha * speed, (1.0 - alpha) * speed},
                seed);
          },
          cfg);
    };
    const auto at_min = pinned(std::max(1e-4, alpha_lo));
    const double mean_alpha = 0.5 * (alpha_lo + alpha_hi);
    const auto at_mean = pinned(mean_alpha);
    table.add_row(
        {"[" + Table::num(alpha_lo, 3) + ", " + Table::num(alpha_hi, 3) + "]",
         Table::num(hetero.rounds.median, 1),
         Table::num(at_min.rounds.median, 1),
         Table::num(at_mean.rounds.median, 1),
         Table::num(hetero.rounds.median /
                        std::max(1.0, at_mean.rounds.median),
                    2),
         Table::num(hetero.rounds.median /
                        std::max(1.0, at_min.rounds.median),
                    2)});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: hetero/mean stays ~1 across rows while\n"
               "hetero/min falls below 1 as the spread widens — the\n"
               "min-alpha (worst-edge) bound is sound but increasingly\n"
               "conservative under heterogeneity.\n";
  return 0;
}
