// Ablation A7 — "high mobility can make up for low transmission power"
// (the paper's reference [12], here exercised through the random walk
// model's mixed static/mobile populations and its transmission radius).
//
// Two sweeps on a fixed grid and population:
//  * mobile fraction 0.25 -> 1.0 at fixed radius: flooding accelerates
//    with mobility;
//  * trade-off matrix: (mobile fraction) x (radius r in hops) — the
//    flooding contour shows low-power/high-mobility configurations
//    matching high-power/low-mobility ones.

#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "core/trial.hpp"
#include "graph/builders.hpp"
#include "mobility/random_walk.hpp"
#include "util/table.hpp"

int main() {
  using namespace megflood;
  bench::print_header(
      "A7 / Mobility vs transmission power (random walk model)",
      "Mixed static/mobile populations on a grid: mobility substitutes\n"
      "for radio range, echoing [12].");

  const std::size_t side = 10;
  const auto graph = std::make_shared<const Graph>(grid_2d(side));
  const std::size_t n = 60;

  auto measure = [&](double fraction, std::uint32_t radius) {
    RandomWalkParams params;
    params.mobile_fraction = fraction;
    params.connect_radius = radius;
    TrialConfig cfg;
    cfg.trials = 16;
    cfg.seed = 1000 + static_cast<std::uint64_t>(fraction * 100) + radius;
    cfg.max_rounds = 4'000'000;
    cfg.threads = 0;  // trial runner: one worker per hardware thread
    return measure_flooding(
        [&](std::uint64_t seed) {
          return std::make_unique<RandomWalkModel>(graph, n, params, seed);
        },
        cfg);
  };

  std::cout << "\n-- mobile-fraction sweep at r = 1 --\n";
  Table sweep({"mobile fraction", "flood p50", "flood p90"});
  std::vector<double> fracs, floods;
  for (double fraction : {0.25, 0.5, 0.75, 1.0}) {
    const auto m = measure(fraction, 1);
    sweep.add_row({Table::num(fraction, 2), Table::num(m.rounds.median, 1),
                   Table::num(m.rounds.p90, 1)});
    fracs.push_back(fraction);
    floods.push_back(m.rounds.p90);
    if (m.incomplete > 0) {
      std::cout << "WARNING: " << m.incomplete << " incomplete at fraction "
                << fraction << "\n";
    }
  }
  sweep.print(std::cout);
  bench::print_slope("flooding vs mobile fraction (negative: mobility helps)",
                     fracs, floods);

  std::cout << "\n-- trade-off matrix: rows = mobile fraction, cols = "
               "radius (flood p50) --\n";
  Table matrix({"fraction \\ r", "r=0", "r=1", "r=2", "r=3"});
  for (double fraction : {0.25, 0.5, 1.0}) {
    std::vector<std::string> row{Table::num(fraction, 2)};
    for (std::uint32_t radius : {0u, 1u, 2u, 3u}) {
      const auto m = measure(fraction, radius);
      row.push_back(m.incomplete > 0 ? ">" + Table::num(m.rounds.median, 0)
                                     : Table::num(m.rounds.median, 1));
    }
    matrix.add_row(std::move(row));
  }
  matrix.print(std::cout);
  std::cout << "\nExpected shape: moving down a column (more mobility) and\n"
               "moving right along a row (more power) both shrink the\n"
               "flooding time; full mobility at r = 1 rivals fractional\n"
               "mobility at r = 2-3 — mobility substitutes for power.\n";
  return 0;
}
