// Experiment E4 — Theorem 3 on node-MEGs with explicit chains.
//
// Model: every node runs a lazy random walk on a K-cycle of states;
// nodes are connected iff their states are within cycle-distance 1 (a 1-D
// geometric proximity connection).  P_NM, P_NM2 and eta are exact
// (Fact 2), T_mix is exact, so the Theorem-3 bound is fully computable.
// Sweep 1: n grows at fixed chain.  Sweep 2: state space K grows at fixed
// n (sparsifies the connection graph: P_NM = 3/K).

#include <iostream>
#include <memory>

#include "analysis/bounds.hpp"
#include "bench_util.hpp"
#include "core/trial.hpp"
#include "graph/builders.hpp"
#include "markov/mixing.hpp"
#include "meg/node_meg.hpp"
#include "util/table.hpp"

namespace megflood {
namespace {

void sweep_n(std::size_t k) {
  const DenseChain chain = lazy_random_walk_chain(cycle_graph(k));
  const ConnectionMap conn = cycle_proximity_connection(k, 1);
  const auto inv = node_meg_invariants(chain.stationary(), conn);
  const auto t_mix = static_cast<double>(mixing_time(chain));
  std::cout << "\n-- sweep n at K = " << k << " states (P_NM = "
            << Table::num(inv.p_nm, 4) << ", eta = " << Table::num(inv.eta, 3)
            << ", T_mix = " << t_mix << ") --\n";
  Table table({"n", "flood p50", "flood p90", "bound(raw)",
               "bound(calibrated)", "dominated"});
  bench::BoundCalibrator cal;
  for (std::size_t n : {32, 64, 128, 256}) {
    TrialConfig cfg;
    cfg.trials = 24;
    cfg.seed = 400 + n;
    cfg.max_rounds = 1'000'000;
    cfg.threads = 0;  // trial runner: one worker per hardware thread
    const auto m = measure_flooding(
        [&](std::uint64_t seed) {
          return std::make_unique<ExplicitNodeMEG>(n, chain, conn, seed);
        },
        cfg);
    const double raw = theorem3_bound(t_mix, n, inv.p_nm, inv.eta);
    const double calibrated = cal.record(m.rounds.p90, raw);
    table.add_row({Table::integer(static_cast<long long>(n)),
                   Table::num(m.rounds.median, 1), Table::num(m.rounds.p90, 1),
                   Table::num(raw, 1), Table::num(calibrated, 1),
                   bench::verdict(m.rounds.p90 <= 3.0 * calibrated)});
    if (m.incomplete > 0) {
      std::cout << "WARNING: " << m.incomplete << " incomplete at n=" << n
                << "\n";
    }
  }
  table.print(std::cout);
  bench::print_footer(cal, "flooding p90");
}

void sweep_states() {
  const std::size_t n = 96;
  std::cout << "\n-- sweep state-space size K at n = " << n
            << " (P_NM = 3/K shrinks, T_mix ~ K^2 grows) --\n";
  Table table({"K", "P_NM", "eta", "T_mix", "flood p50", "flood p90",
               "bound(raw)", "bound(calibrated)", "dominated"});
  bench::BoundCalibrator cal;
  for (std::size_t k : {8, 12, 16, 24}) {
    const DenseChain chain = lazy_random_walk_chain(cycle_graph(k));
    const ConnectionMap conn = cycle_proximity_connection(k, 1);
    const auto inv = node_meg_invariants(chain.stationary(), conn);
    const auto t_mix = static_cast<double>(mixing_time(chain));
    TrialConfig cfg;
    cfg.trials = 16;
    cfg.seed = 4400 + k;
    cfg.max_rounds = 1'000'000;
    cfg.threads = 0;  // trial runner: one worker per hardware thread
    const auto m = measure_flooding(
        [&](std::uint64_t seed) {
          return std::make_unique<ExplicitNodeMEG>(n, chain, conn, seed);
        },
        cfg);
    const double raw = theorem3_bound(t_mix, n, inv.p_nm, inv.eta);
    const double calibrated = cal.record(m.rounds.p90, raw);
    table.add_row({Table::integer(static_cast<long long>(k)),
                   Table::num(inv.p_nm, 4), Table::num(inv.eta, 3),
                   Table::num(t_mix, 0), Table::num(m.rounds.median, 1),
                   Table::num(m.rounds.p90, 1), Table::num(raw, 1),
                   Table::num(calibrated, 1),
                   bench::verdict(m.rounds.p90 <= 3.0 * calibrated)});
    if (m.incomplete > 0) {
      std::cout << "WARNING: " << m.incomplete << " incomplete at K=" << k
                << "\n";
    }
  }
  table.print(std::cout);
  bench::print_footer(cal, "flooding p90");
}

}  // namespace
}  // namespace megflood

int main() {
  using namespace megflood;
  bench::print_header(
      "E4 / Theorem 3 (node-MEGs)",
      "Claim: a node-MEG with P_NM >= 1/poly(n) and P_NM2 <= eta P_NM^2\n"
      "floods in O(T_mix (1/(n P_NM) + eta)^2 log^3 n) w.h.p.  All inputs\n"
      "exact via Fact 2 on an explicit cycle-walk chain.");
  sweep_n(12);
  sweep_states();
  return 0;
}
