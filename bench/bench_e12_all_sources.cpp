// Experiment E12 — methodology check: F(G) = max_s F(G, s).
//
// The paper's flooding time maximizes over the source.  The sweep
// experiments estimate it with rotating sources across trials; this bench
// validates that estimator by computing the *exact* per-realization
// maximum over all n sources (flood_all_sources) and comparing the
// max/median/min source spread on both symmetric (edge-MEG) and
// geometry-bound (random waypoint) models.  Node-exchangeable models
// should show a narrow spread (any source is as good as any other, which
// is why rotating sources suffices); the waypoint's spread reflects the
// source's distance to the dense center.

#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "core/flooding.hpp"
#include "meg/edge_meg.hpp"
#include "mobility/random_waypoint.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace megflood {
namespace {

template <typename Factory>
void run_model(const std::string& name, Factory&& factory,
               std::uint64_t warmup) {
  constexpr std::size_t kRealizations = 8;
  // flood_all_sources() measures F(G) = max_s F(G, s) on one shared
  // realization — per-source results, not a Measurement — so it drives
  // the engine directly; realization seeds come from derive_seeds like
  // every measure() trial.  threads = 0 uses every hardware thread over
  // the word-column blocks; the result is bit-identical to a serial run.
  const auto seeds = derive_seeds(/*master=*/11, kRealizations);
  std::vector<double> maxima, medians, minima, spreads;
  for (std::uint64_t trial = 0; trial < kRealizations; ++trial) {
    auto model = factory(seeds[trial]);
    for (std::uint64_t w = 0; w < warmup; ++w) model->step();
    const AllSourcesResult all =
        flood_all_sources(*model, 1'000'000, /*threads=*/0);
    if (!all.all_completed) {
      std::cout << "WARNING: some sources incomplete in realization "
                << trial << "\n";
      continue;
    }
    std::vector<double> per_source;
    per_source.reserve(all.per_source.size());
    for (const auto& r : all.per_source) {
      per_source.push_back(static_cast<double>(r.rounds));
    }
    const Summary s = summarize(std::move(per_source));
    maxima.push_back(static_cast<double>(all.max_rounds));
    medians.push_back(s.median);
    minima.push_back(static_cast<double>(all.min_rounds));
    spreads.push_back(static_cast<double>(all.max_rounds) /
                      std::max(1.0, static_cast<double>(all.min_rounds)));
  }
  const Summary mx = summarize(maxima);
  const Summary md = summarize(medians);
  const Summary mn = summarize(minima);
  const Summary sp = summarize(spreads);
  Table table({"per-realization stat", "mean over realizations"});
  table.add_row({"F(G) = max_s F(G,s)", Table::num(mx.mean, 1)});
  table.add_row({"median_s F(G,s)", Table::num(md.mean, 1)});
  table.add_row({"min_s F(G,s)", Table::num(mn.mean, 1)});
  table.add_row({"max/min source spread", Table::num(sp.mean, 2)});
  std::cout << "\n-- " << name << " --\n";
  table.print(std::cout);
}

}  // namespace
}  // namespace megflood

int main() {
  using namespace megflood;
  bench::print_header(
      "E12 / Source maximization methodology (F(G) = max_s F(G, s))",
      "Exact all-sources flooding per realization, quantifying how much\n"
      "the source choice matters for each model family.");

  const std::size_t n = 96;
  run_model(
      "two-state edge-MEG (node-exchangeable)",
      [&](std::uint64_t seed) {
        return std::make_unique<TwoStateEdgeMEG>(
            n, TwoStateParams{1.0 / static_cast<double>(n * 2), 0.3}, seed);
      },
      0);

  WaypointParams wp;
  wp.side_length = 10.0;
  wp.v_min = 0.5;
  wp.v_max = 1.0;
  wp.radius = 1.0;
  wp.resolution = 40;
  RandomWaypointModel warm(n, wp, 0);
  run_model(
      "random waypoint",
      [&](std::uint64_t seed) {
        return std::make_unique<RandomWaypointModel>(n, wp, seed);
      },
      warm.suggested_warmup());

  std::cout << "\nExpected shape: small max/min spreads (a few x) on both\n"
               "models — the rotating-source estimator used by E1-E11 is\n"
               "a faithful proxy for the max-over-sources definition.\n";
  return 0;
}
