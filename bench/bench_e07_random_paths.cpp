// Experiment E7 — Corollary 5: random paths over a grid with (unique)
// shortest paths.
//
// Paper claim: if the path family is simple, reversible and delta-regular
// with delta = polylog and |V| = O(n polylog), flooding is
// O(D polylog(n)) where D = diam(H) — within polylog of the trivial
// Omega(D) lower bound.  We use the L-shaped shortest-path family over an
// s x s grid (delta is a small constant, measured exactly), sweep s with
// n = 2|V| agents, and check flooding grows ~ linearly in s (= D/2 + D/2).
//
// Transmission radius is 1 hop: the grid is bipartite and the always-move
// path dynamics preserve agent parity, so same-point connectivity (r = 0)
// provably cannot flood across parity classes (see DESIGN.md).

#include <iostream>
#include <memory>

#include "analysis/bounds.hpp"
#include "bench_util.hpp"
#include "core/trial.hpp"
#include "mobility/random_paths.hpp"
#include "util/table.hpp"

int main() {
  using namespace megflood;
  bench::print_header(
      "E7 / Corollary 5 (random paths on grids, shortest-path family)",
      "Claim: simple + reversible + delta-regular paths over H with\n"
      "|V| <= n poly, delta small => flooding O(T_mix (|V|/n + delta^3)^2\n"
      "log^3 n) = O(D polylog n) for shortest paths on grids (D = diam).");

  Table table({"side s", "|V|", "n", "delta(#P)", "D(grid)", "flood p50",
               "flood p90", "bound(raw)", "bound(calibrated)", "dominated"});
  bench::BoundCalibrator cal;
  std::vector<double> sides, measured;
  for (std::size_t side : {6, 9, 12, 16}) {
    const std::size_t points = side * side;
    const std::size_t n = 2 * points;
    const double delta = GridLPathsModel::regularity_delta(side);
    const double diam_h = static_cast<double>(2 * (side - 1));
    // Unique-path mixing: T_mix = O(D) per the paper's discussion; each
    // trip fully re-randomizes the destination within <= D steps.
    const double t_mix = diam_h;

    TrialConfig cfg;
    cfg.trials = 16;
    cfg.seed = 600 + side;
    cfg.max_rounds = 2'000'000;
    cfg.threads = 0;  // trial runner: one worker per hardware thread
    const auto m = measure_flooding(
        [&](std::uint64_t seed) {
          return std::make_unique<GridLPathsModel>(side, n, 1, seed);
        },
        cfg);
    const double raw = corollary5_bound(t_mix, n, points, delta);
    const double calibrated = cal.record(m.rounds.p90, raw);
    table.add_row(
        {Table::integer(static_cast<long long>(side)),
         Table::integer(static_cast<long long>(points)),
         Table::integer(static_cast<long long>(n)), Table::num(delta, 3),
         Table::num(diam_h, 0), Table::num(m.rounds.median, 1),
         Table::num(m.rounds.p90, 1), Table::num(raw, 1),
         Table::num(calibrated, 1),
         bench::verdict(m.rounds.p90 <= 3.0 * calibrated)});
    sides.push_back(static_cast<double>(side));
    measured.push_back(m.rounds.p90);
    if (m.incomplete > 0) {
      std::cout << "WARNING: " << m.incomplete << " incomplete at s=" << side
                << "\n";
    }
  }
  table.print(std::cout);
  bench::print_footer(cal, "flooding p90");
  bench::print_slope("flooding vs side s (expect ~1, i.e. O(D polylog))",
                     sides, measured);
  std::cout << "delta stays a small constant across s (Corollary 5's "
               "regularity premise for shortest paths on grids).\n";
  return 0;
}
