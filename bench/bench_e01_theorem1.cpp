// Experiment E1 — Theorem 1 on (M, alpha, beta)-stationary dynamic graphs.
//
// Model: two-state edge-MEG (independent per-edge chains), for which the
// theorem's inputs are exact closed forms: alpha = p/(p+q), beta = 1,
// M = T_mix = Theta(1/(p+q)).  We sweep n at two density regimes and
// check that (i) flooding completes, (ii) the calibrated Theorem-1 bound
// dominates the measured p90 across the sweep, (iii) the measured growth
// is no steeper than the bound's growth.

#include <iostream>
#include <memory>

#include "analysis/bounds.hpp"
#include "bench_util.hpp"
#include "core/trial.hpp"
#include "meg/edge_meg.hpp"
#include "util/table.hpp"

namespace megflood {
namespace {

void run_regime(const std::string& name, double edge_expectation, double q) {
  // edge_expectation = expected stationary degree / (n-1) scale factor:
  // p is chosen so that n * alpha ~= edge_expectation.
  std::cout << "\n-- regime: " << name << " (n*alpha ~= " << edge_expectation
            << ", q = " << q << ") --\n";
  Table table({"n", "p", "alpha", "T_mix(M)", "flood p50", "flood p90",
               "bound(raw)", "bound(calibrated)", "dominated"});
  bench::BoundCalibrator cal;
  std::vector<double> ns, measured;
  for (std::size_t n : {64, 128, 256, 512, 1024}) {
    // Solve alpha = p/(p+q) = edge_expectation / n for p.
    const double alpha = edge_expectation / static_cast<double>(n);
    const double p = alpha * q / (1.0 - alpha);
    TwoStateEdgeMEG probe(n, {p, q}, 1);
    const auto t_mix = static_cast<double>(probe.chain().mixing_time());

    TrialConfig cfg;
    cfg.trials = 24;
    cfg.seed = 1000 + n;
    cfg.max_rounds = 2'000'000;
    cfg.threads = 0;  // trial runner: one worker per hardware thread
    const auto m = measure_flooding(
        [&](std::uint64_t seed) {
          return std::make_unique<TwoStateEdgeMEG>(n, TwoStateParams{p, q},
                                                   seed);
        },
        cfg);
    const double raw = theorem1_bound(t_mix, n, alpha, 1.0);
    // A measurement with zero completed trials must not calibrate the
    // constant, count as dominated, or enter the slope fit.
    const bool usable = !m.all_incomplete();
    const double calibrated = usable ? cal.record(m.rounds.p90, raw) : 0.0;
    table.add_row({Table::integer(static_cast<long long>(n)), Table::num(p, 5),
                   Table::num(alpha, 5), Table::num(t_mix, 0),
                   bench::fmt_rounds(m, m.rounds.median),
                   bench::fmt_rounds(m, m.rounds.p90),
                   Table::num(raw, 1),
                   usable ? Table::num(calibrated, 1) : "n/a",
                   usable ? bench::verdict(m.rounds.p90 <= 3.0 * calibrated)
                          : "n/a"});
    if (usable) {
      ns.push_back(static_cast<double>(n));
      measured.push_back(m.rounds.p90);
    }
    bench::warn_incomplete(m, "n=" + std::to_string(n));
  }
  table.print(std::cout);
  bench::print_footer(cal, "flooding p90");
  bench::print_slope("measured flooding vs n", ns, measured);
}

}  // namespace
}  // namespace megflood

int main() {
  using namespace megflood;
  bench::print_header(
      "E1 / Theorem 1",
      "Claim: flooding time of an (M, alpha, beta)-stationary dynamic graph\n"
      "is O(M * (1/(n*alpha) + beta)^2 * log^2 n) w.h.p.  Instantiated on\n"
      "two-state edge-MEGs where alpha, beta, M are exact closed forms.");
  // Sparse regime: expected stationary degree ~2 (disconnected snapshots).
  run_regime("sparse", 2.0, 0.25);
  // Denser regime: expected stationary degree ~8.
  run_regime("dense", 8.0, 0.25);
  return 0;
}
