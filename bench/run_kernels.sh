#!/usr/bin/env sh
# Runs the kernel micro-benchmarks (bench_kernels, google-benchmark) and
# writes BENCH_kernels.json at the repository root, so successive PRs can
# track the perf trajectory of the hot kernels.
#
# Usage: bench/run_kernels.sh [build-dir]   (default: ./build)
#
# The build type is FORCED to Release: numbers from a -O0/Debug tree are
# meaningless, and an inherited Debug cache once polluted the recorded
# BENCH_kernels.json.  Note that the `library_build_type` field in the
# JSON describes how the *system google-benchmark library* was built
# (Debian ships it as "debug"); the build type of the megflood code under
# test is recorded separately as `megflood_build_type` in the context.
#
# Equivalent CMake target: cmake --build <build-dir> --target bench_kernels_json

set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release >/dev/null

if ! cmake --build "$build_dir" -j --target bench_kernels >/dev/null; then
  echo "error: could not build bench_kernels (google-benchmark required):" >&2
  echo "  cmake -B $build_dir -S $repo_root -DCMAKE_BUILD_TYPE=Release" >&2
  echo "  cmake --build $build_dir -j --target bench_kernels" >&2
  exit 1
fi

build_type=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$build_dir/CMakeCache.txt")
if [ "$build_type" != "Release" ]; then
  echo "error: $build_dir is configured as '$build_type', not Release" >&2
  exit 1
fi

"$build_dir/bench_kernels" \
  --benchmark_context=megflood_build_type="$build_type" \
  --benchmark_format=json \
  --benchmark_out="$repo_root/BENCH_kernels.json" \
  --benchmark_out_format=json

echo "wrote $repo_root/BENCH_kernels.json"
