#!/usr/bin/env sh
# Runs the kernel micro-benchmarks (bench_kernels, google-benchmark) and
# writes BENCH_kernels.json at the repository root, so successive PRs can
# track the perf trajectory of the hot kernels.
#
# Usage: bench/run_kernels.sh [build-dir]   (default: ./build)
#
# Equivalent CMake target: cmake --build <build-dir> --target bench_kernels_json

set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

if [ ! -x "$build_dir/bench_kernels" ]; then
  echo "error: $build_dir/bench_kernels not found." >&2
  echo "Build it first (requires google-benchmark):" >&2
  echo "  cmake -B build -S . && cmake --build build -j --target bench_kernels" >&2
  exit 1
fi

"$build_dir/bench_kernels" \
  --benchmark_format=json \
  --benchmark_out="$repo_root/BENCH_kernels.json" \
  --benchmark_out_format=json

echo "wrote $repo_root/BENCH_kernels.json"
