// Ablation A5 — refined communication protocols on dynamic graphs
// (Section 5's closing remark, beyond the k-push reduction of E10).
//
// Compares flooding against push, pull and push-pull gossip (one contact
// per node per round) on a sparse edge-MEG and on the random waypoint.
// On sparse dynamic graphs snapshot degrees are mostly <= 1, so a single
// contact already exhausts the neighborhood: all protocols should land
// within a small factor of flooding — the "virtual dynamic graph"
// reduction costs little exactly where the paper's bound is interesting.

#include <algorithm>
#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "core/trial.hpp"
#include "meg/edge_meg.hpp"
#include "mobility/random_waypoint.hpp"
#include "protocols/gossip.hpp"
#include "protocols/radio_broadcast.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace megflood {
namespace {

template <typename Factory>
void run_model(const std::string& name, Factory&& factory,
               std::uint64_t warmup) {
  std::cout << "\n-- model: " << name << " --\n";
  constexpr std::size_t kTrials = 14;

  struct Mode {
    std::string label;
    bool flooding;
    GossipMode mode;
  };
  const std::vector<Mode> modes = {
      {"flooding", true, GossipMode::kPush},
      {"push", false, GossipMode::kPush},
      {"pull", false, GossipMode::kPull},
      {"push-pull", false, GossipMode::kPushPull},
  };

  Table table({"protocol", "rounds p50", "rounds p90", "contacts p50"});
  double flooding_median = 1.0;
  for (const auto& mode : modes) {
    std::vector<double> rounds, contacts;
    for (std::uint64_t trial = 0; trial < kTrials; ++trial) {
      auto model = factory(trial * 211 + 3);
      for (std::uint64_t w = 0; w < warmup; ++w) model->step();
      if (mode.flooding) {
        const FloodResult r = flood(*model, 0, 4'000'000);
        if (r.completed) {
          rounds.push_back(static_cast<double>(r.rounds));
          contacts.push_back(0.0);
        }
      } else {
        const GossipResult r =
            gossip_flood(*model, 0, mode.mode, 4'000'000, trial * 13 + 7);
        if (r.flood.completed) {
          rounds.push_back(static_cast<double>(r.flood.rounds));
          contacts.push_back(static_cast<double>(r.contacts));
        }
      }
    }
    const Summary s = summarize(std::move(rounds));
    const Summary c = summarize(std::move(contacts));
    if (mode.flooding) flooding_median = std::max(1.0, s.median);
    table.add_row({mode.label, Table::num(s.median, 1), Table::num(s.p90, 1),
                   mode.flooding ? "-" : Table::num(c.median, 0)});
  }
  // Radio broadcast with collisions (reference [9]'s model), tau = 1 and
  // ALOHA tau = 0.5.
  for (double tau : {1.0, 0.5}) {
    std::vector<double> rounds, contacts;
    for (std::uint64_t trial = 0; trial < kTrials; ++trial) {
      auto model = factory(trial * 211 + 3);
      for (std::uint64_t w = 0; w < warmup; ++w) model->step();
      const RadioResult r =
          radio_broadcast(*model, 0, tau, 4'000'000, trial * 5 + 1);
      if (r.flood.completed) {
        rounds.push_back(static_cast<double>(r.flood.rounds));
        contacts.push_back(static_cast<double>(r.transmissions));
      }
    }
    const Summary s = summarize(std::move(rounds));
    const Summary c = summarize(std::move(contacts));
    table.add_row({"radio (tau=" + Table::num(tau, 1) + ")",
                   s.count > 0 ? Table::num(s.median, 1) : "stalled",
                   s.count > 0 ? Table::num(s.p90, 1) : "-",
                   s.count > 0 ? Table::num(c.median, 0) : "-"});
  }
  table.print(std::cout);
  std::cout << "flooding median for reference: "
            << Table::num(flooding_median, 1) << "\n";
}

}  // namespace
}  // namespace megflood

int main() {
  using namespace megflood;
  bench::print_header(
      "A5 / Gossip protocols vs flooding on dynamic graphs",
      "One random contact per node per round (push / pull / push-pull)\n"
      "versus full flooding, on sparse dynamic networks.");

  const std::size_t n = 128;
  run_model(
      "sparse two-state edge-MEG (n = 128)",
      [&](std::uint64_t seed) {
        return std::make_unique<TwoStateEdgeMEG>(
            n, TwoStateParams{1.0 / static_cast<double>(n * 2), 0.3}, seed);
      },
      0);

  WaypointParams wp;
  wp.side_length = 10.0;
  wp.v_min = 0.5;
  wp.v_max = 1.0;
  wp.radius = 1.0;
  wp.resolution = 40;
  RandomWaypointModel warm(96, wp, 0);
  run_model(
      "random waypoint (n = 96, sparse)",
      [&](std::uint64_t seed) {
        return std::make_unique<RandomWaypointModel>(96, wp, seed);
      },
      warm.suggested_warmup());
  return 0;
}
