// Ablation A5 — refined communication protocols on dynamic graphs
// (Section 5's closing remark, beyond the k-push reduction of E10).
//
// Compares flooding against push, pull and push-pull gossip (one contact
// per node per round) on a sparse edge-MEG and on the random waypoint.
// On sparse dynamic graphs snapshot degrees are mostly <= 1, so a single
// contact already exhausts the neighborhood: all protocols should land
// within a small factor of flooding — the "virtual dynamic graph"
// reduction costs little exactly where the paper's bound is interesting.
//
// Every protocol runs through the generic measure() harness (one root
// seed, derive_seeds per trial, thread pool, incomplete accounting) —
// there are no per-protocol trial loops or ad-hoc seed arithmetic here.

#include <algorithm>
#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "core/process.hpp"
#include "core/trial.hpp"
#include "meg/edge_meg.hpp"
#include "mobility/random_waypoint.hpp"
#include "protocols/gossip.hpp"
#include "protocols/radio_broadcast.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace megflood {
namespace {

void run_model(const std::string& name, const GraphFactory& factory,
               std::uint64_t warmup) {
  std::cout << "\n-- model: " << name << " --\n";
  TrialConfig cfg;
  cfg.trials = 14;
  cfg.seed = 3;
  cfg.max_rounds = 4'000'000;
  cfg.rotate_sources = false;
  cfg.warmup_steps = warmup;
  cfg.threads = 0;  // one worker per hardware thread; merge is bit-identical

  struct Row {
    std::string label;
    ProcessFactory process;
    std::string contacts_metric;  // "" = not applicable
  };
  const std::vector<Row> rows = {
      {"flooding", [] { return std::make_unique<FloodingProcess>(); }, ""},
      {"push",
       [] { return std::make_unique<GossipProcess>(GossipMode::kPush); },
       "contacts"},
      {"pull",
       [] { return std::make_unique<GossipProcess>(GossipMode::kPull); },
       "contacts"},
      {"push-pull",
       [] { return std::make_unique<GossipProcess>(GossipMode::kPushPull); },
       "contacts"},
      // Radio broadcast with collisions (reference [9]'s model), tau = 1
      // and ALOHA tau = 0.5.
      {"radio (tau=1.0)",
       [] { return std::make_unique<RadioBroadcastProcess>(1.0); },
       "transmissions"},
      {"radio (tau=0.5)",
       [] { return std::make_unique<RadioBroadcastProcess>(0.5); },
       "transmissions"},
  };

  Table table({"protocol", "rounds p50", "rounds p90", "contacts p50"});
  double flooding_median = 1.0;
  for (const Row& row : rows) {
    const Measurement m = measure(factory, row.process, cfg);
    if (row.contacts_metric.empty()) {
      flooding_median = std::max(1.0, m.rounds.median);
    }
    std::string contacts = "-";
    if (!row.contacts_metric.empty() && !m.all_incomplete()) {
      contacts = Table::num(m.metrics.at(row.contacts_metric).median, 0);
    }
    table.add_row({row.label, bench::fmt_rounds(m, m.rounds.median),
                   bench::fmt_rounds(m, m.rounds.p90), contacts});
    bench::warn_incomplete(m, row.label + " on " + name);
  }
  table.print(std::cout);
  std::cout << "flooding median for reference: "
            << Table::num(flooding_median, 1) << "\n";
}

}  // namespace
}  // namespace megflood

int main() {
  using namespace megflood;
  bench::print_header(
      "A5 / Gossip protocols vs flooding on dynamic graphs",
      "One random contact per node per round (push / pull / push-pull)\n"
      "versus full flooding, on sparse dynamic networks.");

  const std::size_t n = 128;
  run_model(
      "sparse two-state edge-MEG (n = 128)",
      [&](std::uint64_t seed) -> std::unique_ptr<DynamicGraph> {
        return std::make_unique<TwoStateEdgeMEG>(
            n, TwoStateParams{1.0 / static_cast<double>(n * 2), 0.3}, seed);
      },
      0);

  WaypointParams wp;
  wp.side_length = 10.0;
  wp.v_min = 0.5;
  wp.v_max = 1.0;
  wp.radius = 1.0;
  wp.resolution = 40;
  RandomWaypointModel warm(96, wp, 0);
  run_model(
      "random waypoint (n = 96, sparse)",
      [&](std::uint64_t seed) -> std::unique_ptr<DynamicGraph> {
        return std::make_unique<RandomWaypointModel>(96, wp, seed);
      },
      warm.suggested_warmup());
  return 0;
}
