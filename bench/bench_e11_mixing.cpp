// Experiment E11 — the mixing-time inputs the paper's bounds consume.
//
// Verifies the three mixing facts quoted in the paper:
//   (1) two-state edge chain: T_mix = Theta(1/(p+q))  [10],
//   (2) random waypoint over side-L square: T_mix = Theta(L/v_max) [1,29],
//   (3) random walk on k-augmented grids: T_mix decreasing ~ k^2.
// (1) and (3) are exact (distribution evolution), (2) uses the empirical
// positional-TV estimator from a worst-case corner start.

#include <iostream>
#include <memory>

#include "analysis/mixing_estimator.hpp"
#include "bench_util.hpp"
#include "graph/algorithms.hpp"
#include "graph/builders.hpp"
#include "markov/chain.hpp"
#include "markov/mixing.hpp"
#include "markov/two_state.hpp"
#include "mobility/random_waypoint.hpp"
#include "util/table.hpp"

namespace megflood {
namespace {

void edge_chain_mixing() {
  std::cout << "\n-- (1) two-state edge chain: T_mix vs 1/(p+q) --\n";
  Table table({"p", "q", "1/(p+q)", "T_mix exact", "T_mix * (p+q)"});
  std::vector<double> inv_rate, tmix;
  for (const auto& [p, q] : std::vector<std::pair<double, double>>{
           {0.08, 0.08}, {0.04, 0.04}, {0.02, 0.02}, {0.01, 0.01},
           {0.002, 0.018}}) {
    const TwoStateChain chain({p, q});
    const auto t = static_cast<double>(chain.mixing_time());
    table.add_row({Table::num(p, 4), Table::num(q, 4),
                   Table::num(1.0 / (p + q), 1), Table::num(t, 0),
                   Table::num(t * (p + q), 2)});
    inv_rate.push_back(1.0 / (p + q));
    tmix.push_back(t);
  }
  table.print(std::cout);
  bench::print_slope("T_mix vs 1/(p+q) (expect ~1)", inv_rate, tmix);
}

void waypoint_mixing() {
  std::cout << "\n-- (2) random waypoint: positional T_mix vs L/v_max --\n";
  Table table({"L", "v_max", "L/v_max", "T_mix (empirical)",
               "T_mix/(L/v)"});
  std::vector<double> l_over_v, tmix;
  for (const auto& [L, v] : std::vector<std::pair<double, double>>{
           {4.0, 1.0}, {8.0, 1.0}, {8.0, 2.0}, {16.0, 2.0}}) {
    WaypointParams p;
    p.side_length = L;
    p.v_min = 0.5 * v;
    p.v_max = v;
    p.radius = 1.0;
    // Coarse observation cells (8x8): the TV estimator's sampling-noise
    // floor scales like sqrt(cells / samples); with 24 runs x 48 agents
    // per step it sits well below the 0.3 threshold.
    p.resolution = 8;
    const std::size_t n = 48;
    // Stationary reference from one long warmed-up trajectory.
    RandomWaypointModel ref(n, p, 2024);
    for (std::uint64_t w = 0; w < ref.suggested_warmup(10.0); ++w) {
      ref.step();
    }
    Histogram ref_hist(ref.grid().num_points());
    for (int s = 0; s < 4000; ++s) {
      ref.step();
      for (NodeId a = 0; a < n; ++a) ref_hist.add(ref.agent_cell(a));
    }
    auto factory = [&](std::uint64_t seed) {
      auto model = std::make_unique<RandomWaypointModel>(n, p, seed);
      model->collapse_to({0.0, 0.0});
      return model;
    };
    const auto profile = positional_mixing_profile(
        factory, ref.grid().num_points(),
        [](const DynamicGraph& d, NodeId a) {
          return static_cast<const RandomWaypointModel&>(d).agent_cell(a);
        },
        ref_hist.distribution(), 24,
        static_cast<std::size_t>(40.0 * L / v), 0.3, 77);
    const double t = profile.mixing_time == SIZE_MAX
                         ? -1.0
                         : static_cast<double>(profile.mixing_time);
    table.add_row({Table::num(L, 1), Table::num(v, 1), Table::num(L / v, 1),
                   Table::num(t, 0), Table::num(t / (L / v), 2)});
    if (t > 0.0) {
      l_over_v.push_back(L / v);
      tmix.push_back(t);
    }
  }
  table.print(std::cout);
  bench::print_slope("T_mix vs L/v (expect ~1)", l_over_v, tmix);
}

void kaugmented_mixing() {
  std::cout << "\n-- (3) k-augmented torus walks: T_mix vs k --\n";
  const std::size_t side = 15;  // torus needs side > 2k+1
  const std::size_t points = side * side;
  Table table({"k", "T_mix exact", "T_mix * k^2"});
  std::vector<double> ks, tmix;
  for (std::size_t k : {1, 2, 3, 4}) {
    const Graph g = k_augmented_torus(side, k);
    const auto balls = all_balls(g, 1);
    std::vector<std::vector<double>> rows(points,
                                          std::vector<double>(points, 0.0));
    for (VertexId v = 0; v < points; ++v) {
      const double w = 1.0 / static_cast<double>(balls[v].size() + 1);
      rows[v][v] = w;
      for (VertexId u : balls[v]) rows[v][u] = w;
    }
    // On the torus every start is equivalent by vertex transitivity.
    const auto t = static_cast<double>(
        mixing_time_from_starts(DenseChain(std::move(rows)), {0}));
    table.add_row({Table::integer(static_cast<long long>(k)),
                   Table::num(t, 0),
                   Table::num(t * static_cast<double>(k * k), 0)});
    ks.push_back(static_cast<double>(k));
    tmix.push_back(t);
  }
  table.print(std::cout);
  bench::print_slope("T_mix vs k (expect ~-2)", ks, tmix);
}

}  // namespace
}  // namespace megflood

int main() {
  using namespace megflood;
  bench::print_header(
      "E11 / Mixing-time inputs",
      "Claims quoted by the paper: T_mix(edge chain) = Theta(1/(p+q));\n"
      "T_mix(waypoint) = Theta(L/v_max); T_mix(k-augmented grid walk)\n"
      "decreases ~ k^2.");
  edge_chain_mixing();
  waypoint_mixing();
  kaugmented_mixing();
  return 0;
}
