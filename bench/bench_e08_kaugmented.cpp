// Experiment E8 — Corollary 6 vs. the meeting-time bound of Dimitriou,
// Nikoletseas, Spirakis [15] on k-augmented grids.
//
// Paper claim (end of Section 4.1): for random walks on the k-augmented
// grid, the meeting time T* stays Omega(s log s) (so [15]'s O(T* log n)
// bound does not improve much with k) while the mixing time drops ~ k^2,
// so the Corollary-6 bound O(T_mix (delta^2 |V|/n + delta^7)^2 log^3 n)
// beats [15] by a factor ~ k^2.
//
// We use the k-augmented *torus* so that delta = 1 exactly (every point
// has degree 2k(k+1)): on the bounded grid the corner/center degree ratio
// delta varies with k and its delta^7 entry in the bound masks the k^2
// effect at bench-size s (documented in EXPERIMENTS.md).  We measure
// T_mix (exact, distribution evolution), T* (simulated), and the actual
// flooding time for k = 1..4.

#include <iostream>
#include <memory>

#include "analysis/bounds.hpp"
#include "analysis/meeting_time.hpp"
#include "bench_util.hpp"
#include "core/trial.hpp"
#include "graph/algorithms.hpp"
#include "graph/builders.hpp"
#include "markov/chain.hpp"
#include "markov/mixing.hpp"
#include "mobility/random_walk.hpp"
#include "util/table.hpp"

int main() {
  using namespace megflood;
  bench::print_header(
      "E8 / Corollary 6 on k-augmented grids (vs. [15])",
      "Claim: augmenting the grid with hop-<=k edges drops the mixing time\n"
      "~k^2 while the meeting time T* barely moves, so the T_mix-based\n"
      "Corollary-6 bound beats the T*-based bound O(T* log n) of [15] by\n"
      "~k^2.  Torus variant: delta = 1 exactly.");

  const std::size_t side = 15;  // side > 2k+1 for k <= 4
  const std::size_t points = side * side;
  const std::size_t n = 2 * points;

  Table table({"k", "degree", "T_mix", "T* (mean)", "flood p50", "flood p90",
               "ours(raw)", "[15](raw)", "[15]/ours"});
  std::vector<double> ks, tmixes, ratios, floods;
  double base_ratio = 0.0;
  for (std::size_t k : {1, 2, 3, 4}) {
    const auto graph =
        std::make_shared<const Graph>(k_augmented_torus(side, k));
    const DegreeStats ds = degree_stats(*graph);

    // Exact mixing time of the move chain (uniform over ball + self); on
    // the torus every start is equivalent, so one start suffices.
    std::vector<std::vector<double>> rows(points,
                                          std::vector<double>(points, 0.0));
    const auto balls = all_balls(*graph, 1);
    for (VertexId v = 0; v < points; ++v) {
      const double w = 1.0 / static_cast<double>(balls[v].size() + 1);
      rows[v][v] = w;
      for (VertexId u : balls[v]) rows[v][u] = w;
    }
    const auto t_mix = static_cast<double>(
        mixing_time_from_starts(DenseChain(std::move(rows)), {0}));

    const auto meeting =
        measure_meeting_time(*graph, {}, 300, 10'000'000, 800 + k);

    TrialConfig cfg;
    cfg.trials = 12;
    cfg.seed = 850 + k;
    cfg.max_rounds = 2'000'000;
    cfg.threads = 0;  // trial runner: one worker per hardware thread
    const auto m = measure_flooding(
        [&](std::uint64_t seed) {
          return std::make_unique<RandomWalkModel>(graph, n,
                                                   RandomWalkParams{}, seed);
        },
        cfg);

    const double ours =
        corollary6_bound(t_mix, n, points, ds.regularity_delta);
    const double theirs = meeting_time_bound(meeting.steps.mean, n);
    const double ratio = theirs / ours;
    if (k == 1) base_ratio = ratio;
    table.add_row({Table::integer(static_cast<long long>(k)),
                   Table::integer(static_cast<long long>(ds.max)),
                   Table::num(t_mix, 0), Table::num(meeting.steps.mean, 1),
                   Table::num(m.rounds.median, 1), Table::num(m.rounds.p90, 1),
                   Table::num(ours, 1), Table::num(theirs, 1),
                   Table::num(ratio, 4)});
    ks.push_back(static_cast<double>(k));
    tmixes.push_back(t_mix);
    ratios.push_back(ratio);
    floods.push_back(m.rounds.p90);
    if (m.incomplete > 0) {
      std::cout << "WARNING: " << m.incomplete << " incomplete at k=" << k
                << "\n";
    }
  }
  table.print(std::cout);
  bench::print_slope("T_mix vs k (expect ~-2)", ks, tmixes);
  bench::print_slope("measured flooding vs k (drops with k)", ks, floods);
  bench::print_slope("([15]/ours) advantage vs k (expect ~+2: ours improves "
                     "k^2 faster)",
                     ks, ratios);
  std::cout << "relative advantage at k=4 vs k=1: "
            << Table::num(ratios.back() / base_ratio, 2)
            << "x (paper predicts ~k^2 = 16)\n";
  return 0;
}
