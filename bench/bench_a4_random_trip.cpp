// Ablation A4 — random trip generality (Corollary 4 beyond plain RWP).
//
// Corollary 4 covers *any* random trip model whose positional density
// satisfies the (delta, lambda) uniformity conditions.  Two variations on
// the waypoint theme:
//  * pause times at waypoints — pauses dilute motion, stretching the
//    mixing time ~ (1 + pause_fraction) and flooding with it;
//  * a disk region instead of the square — different geometry, same
//    conditions, same flooding ballpark.

#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "core/trial.hpp"
#include "mobility/random_trip.hpp"
#include "util/table.hpp"

namespace megflood {
namespace {

FloodingMeasurement run_policy(std::shared_ptr<const TripPolicy> policy,
                               std::size_t n, double radius,
                               std::uint64_t seed, double warmup_factor) {
  RandomTripModel warm(n, policy, radius, 48, 0);
  TrialConfig cfg;
  cfg.trials = 16;
  cfg.seed = seed;
  cfg.max_rounds = 4'000'000;
  cfg.threads = 0;  // trial runner: one worker per hardware thread
  cfg.warmup_steps = static_cast<std::uint64_t>(
      warmup_factor * static_cast<double>(warm.suggested_warmup()));
  return measure_flooding(
      [&](std::uint64_t s) {
        return std::make_unique<RandomTripModel>(n, policy, radius, 48, s);
      },
      cfg);
}

void pause_sweep() {
  const std::size_t n = 96;
  const double side = 10.0, v = 1.0, radius = 1.0;
  std::cout << "\n-- pause-time sweep (square, L = " << side << ", v <= " << v
            << ") --\n";
  // Mean trip length ~ 0.52 L, so mean travel time ~ 0.52 L / (0.75 v).
  const double travel = 0.52 * side / (0.75 * v);
  Table table({"pause rounds", "dwell fraction", "flood p50", "flood p90"});
  std::vector<double> dilation, floods;
  for (std::uint64_t pause : {0ULL, 4ULL, 8ULL, 16ULL, 32ULL}) {
    auto policy = std::make_shared<SquareWaypointPolicy>(side, 0.5 * v, v,
                                                         pause, pause);
    const auto m =
        run_policy(policy, n, radius, 700 + pause,
                   2.0 * (1.0 + static_cast<double>(pause) / travel));
    const double fraction =
        static_cast<double>(pause) / (travel + static_cast<double>(pause));
    table.add_row({Table::integer(static_cast<long long>(pause)),
                   Table::num(fraction, 2), Table::num(m.rounds.median, 1),
                   Table::num(m.rounds.p90, 1)});
    dilation.push_back(1.0 + static_cast<double>(pause) / travel);
    floods.push_back(m.rounds.p90);
    if (m.incomplete > 0) {
      std::cout << "WARNING: " << m.incomplete << " incomplete at pause="
                << pause << "\n";
    }
  }
  table.print(std::cout);
  bench::print_slope(
      "flooding vs time-dilation factor (expect ~1: pauses stretch the "
      "clock)",
      dilation, floods);
}

void region_comparison() {
  const std::size_t n = 96;
  const double side = 10.0, v = 1.0, radius = 1.0;
  std::cout << "\n-- region ablation at matched density (n/area) --\n";
  Table table({"region", "area", "flood p50", "flood p90"});
  const auto square = run_policy(
      std::make_shared<SquareWaypointPolicy>(side, 0.5 * v, v), n, radius,
      900, 2.0);
  table.add_row({"square", Table::num(side * side, 0),
                 Table::num(square.rounds.median, 1),
                 Table::num(square.rounds.p90, 1)});
  // Disk with the same area: radius R with pi R^2 = side^2.
  const double disk_side = 2.0 * side / std::sqrt(std::numbers::pi);
  const auto disk = run_policy(
      std::make_shared<DiskWaypointPolicy>(disk_side, 0.5 * v, v), n, radius,
      901, 2.0);
  table.add_row({"disk (same area)",
                 Table::num(std::numbers::pi * disk_side * disk_side / 4.0, 0),
                 Table::num(disk.rounds.median, 1),
                 Table::num(disk.rounds.p90, 1)});
  table.print(std::cout);
  std::cout << "Expected shape: same-area disk floods within a small factor\n"
               "of the square — Corollary 4's conditions are geometry-\n"
               "agnostic.\n";
}

}  // namespace
}  // namespace megflood

int main() {
  using namespace megflood;
  bench::print_header(
      "A4 / Random-trip generality (pauses, regions)",
      "Corollary 4 covers any random trip model meeting the (delta,\n"
      "lambda) uniformity conditions; flooding should respond only\n"
      "through the positional density and the mixing time.");
  pause_sweep();
  region_comparison();
  return 0;
}
