// Experiment E6 — Corollary 4's preconditions on the random waypoint.
//
// The paper replaces Theorem 3's pairwise-independence hypothesis with two
// uniformity conditions on the positional stationary density F_wp:
//   (a) F(u) <= delta / vol(R) everywhere,
//   (b) a region B with vol(B_r) >= lambda vol(R) where F >= 1/(delta vol).
// It asserts these hold for absolute constants delta, lambda even though
// F_wp is center-biased (Bettstetter et al. [6], Le Boudec [25]).  We
// sample F_wp, print the radial density profile, the empirical (delta,
// lambda), and the empirical eta = P_NM2 / P_NM^2 of Theorem 3.

#include <algorithm>
#include <cmath>
#include <iostream>
#include <memory>

#include "analysis/estimators.hpp"
#include "analysis/positional.hpp"
#include "bench_util.hpp"
#include "mobility/random_waypoint.hpp"
#include "util/table.hpp"

int main() {
  using namespace megflood;
  bench::print_header(
      "E6 / Corollary 4 preconditions on the random waypoint",
      "Claims: F_wp is center-biased yet (delta, lambda)-uniform for\n"
      "absolute constants; P_NM2 <= eta P_NM^2 for constant eta.");

  WaypointParams p;
  p.side_length = 8.0;
  p.v_min = 0.5;
  p.v_max = 1.0;
  p.radius = 1.0;
  p.resolution = 24;
  const std::size_t n = 64;

  RandomWaypointModel model(n, p, 42);
  for (std::uint64_t w = 0; w < model.suggested_warmup(8.0); ++w) {
    model.step();
  }
  const auto hist = sample_positional(
      model, model.grid().num_points(),
      [](const DynamicGraph& g, NodeId a) {
        return static_cast<const RandomWaypointModel&>(g).agent_cell(a);
      },
      1500, 4);
  const auto uni = check_uniformity(hist, model.grid(), p.radius);

  // Radial profile: relative density (1.0 = uniform) by L_inf ring from
  // the grid center.
  const SquareGrid& grid = model.grid();
  const std::size_t m = grid.resolution();
  Table profile({"ring (Linf from center)", "cells", "mean rho",
                 "min rho", "max rho"});
  const auto center = static_cast<double>(m - 1) / 2.0;
  const std::size_t rings = (m + 1) / 2;
  for (std::size_t ring = 0; ring < rings; ++ring) {
    double sum = 0.0, mn = 1e18, mx = 0.0;
    std::size_t count = 0;
    for (CellId c = 0; c < grid.num_points(); ++c) {
      const double dr = std::abs(static_cast<double>(grid.row(c)) - center);
      const double dc = std::abs(static_cast<double>(grid.col(c)) - center);
      if (static_cast<std::size_t>(std::max(dr, dc)) != ring) continue;
      const double rho = uni.relative_density[c];
      sum += rho;
      mn = std::min(mn, rho);
      mx = std::max(mx, rho);
      ++count;
    }
    if (count == 0) continue;
    profile.add_row({Table::integer(static_cast<long long>(ring)),
                     Table::integer(static_cast<long long>(count)),
                     Table::num(sum / static_cast<double>(count), 3),
                     Table::num(mn, 3), Table::num(mx, 3)});
  }
  profile.print(std::cout);

  std::cout << "\ncenter bias: rho(center ring) / rho(outer ring) = "
            << Table::num(uni.relative_density[grid.index(m / 2, m / 2)] /
                              std::max(1e-9,
                                       uni.relative_density[grid.index(0, 0)]),
                          2)
            << " (paper: F_wp strongly biased towards the center)\n";
  std::cout << "empirical delta  = " << Table::num(uni.delta, 3)
            << "   (condition (a): constant, independent of n)\n";
  std::cout << "empirical lambda = " << Table::num(uni.lambda, 3)
            << "   (condition (b): constant volume fraction)\n";
  std::cout << "conditions hold with modest constants: "
            << bench::verdict(uni.delta < 10.0 && uni.lambda > 0.02) << "\n";

  // Theorem 3's eta on the same model, from snapshot sampling.
  RandomWaypointModel model2(n, p, 77);
  for (std::uint64_t w = 0; w < model2.suggested_warmup(8.0); ++w) {
    model2.step();
  }
  const auto pw = estimate_pairwise(model2, 600, 4, 256);
  std::cout << "\nempirical P_NM  = " << Table::num(pw.p_nm, 5)
            << "\nempirical P_NM2 = " << Table::num(pw.p_nm2, 6)
            << "\nempirical eta   = " << Table::num(pw.eta, 3)
            << "  (Theorem 3 hypothesis: constant eta) -> "
            << bench::verdict(pw.eta < 20.0) << "\n";
  return 0;
}
