// Micro-benchmarks (google-benchmark) for the simulator's hot kernels:
// model steps, snapshot rebuilds, and flooding rounds.  These are the
// costs that bound how large an experiment the harness can run; tracked
// here so performance regressions show up alongside the science.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/flooding.hpp"
#include "geometry/square_grid.hpp"
#include "graph/builders.hpp"
#include "meg/edge_meg.hpp"
#include "meg/general_edge_meg.hpp"
#include "meg/heterogeneous_edge_meg.hpp"
#include "meg/node_meg.hpp"
#include "mobility/random_paths.hpp"
#include "mobility/random_walk.hpp"
#include "mobility/random_waypoint.hpp"
#include "util/rng.hpp"

namespace megflood {
namespace {

void BM_EdgeMegStepSparse(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  TwoStateEdgeMEG meg(n, {2.0 / static_cast<double>(n * n), 0.2}, 1);
  for (auto _ : state) {
    meg.step();
    benchmark::DoNotOptimize(meg.snapshot().num_edges());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EdgeMegStepSparse)->Arg(256)->Arg(1024)->Arg(4096);

void BM_EdgeMegStepDense(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  TwoStateEdgeMEG meg(n, {0.2, 0.2}, 1);
  for (auto _ : state) {
    meg.step();
    benchmark::DoNotOptimize(meg.snapshot().num_edges());
  }
}
BENCHMARK(BM_EdgeMegStepDense)->Arg(64)->Arg(256);

void BM_GeneralEdgeMegStep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto link = make_bursty_link(0.1, 0.4, 0.3);
  GeneralEdgeMEG meg(n, link.chain, link.chi, 1);
  for (auto _ : state) {
    meg.step();
    benchmark::DoNotOptimize(meg.snapshot().num_edges());
  }
}
BENCHMARK(BM_GeneralEdgeMegStep)->Arg(64)->Arg(256);

void BM_GeneralEdgeMegStepSparse(benchmark::State& state) {
  // Paper-scale sparse regime: bursty hidden chain scaled so the
  // stationary edge probability is ~8/n (alpha = 2 / (n/4 + 4)).
  // Storage is kAuto: n <= 4096 runs the dense reference engine
  // (numbers comparable with PR 2-4), n >= 16384 crosses the memory
  // threshold and runs the sparse minority-state map — sizes the dense
  // engine cannot allocate (~4.8 GB of per-pair state at n = 32768).
  const auto n = static_cast<std::size_t>(state.range(0));
  auto link = make_bursty_link(4.0 / static_cast<double>(n), 0.5, 0.5);
  GeneralEdgeMEG meg(n, link.chain, link.chi, 1);
  for (auto _ : state) {
    meg.step();
    benchmark::DoNotOptimize(meg.snapshot().num_edges());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(meg_storage_name(meg.storage()));
}
BENCHMARK(BM_GeneralEdgeMegStepSparse)->Arg(1024)->Arg(4096)->Arg(16384)
    ->Arg(32768)->Unit(benchmark::kMicrosecond);

void BM_HeterogeneousEdgeMegStepSparse(benchmark::State& state) {
  // Sparse heterogeneous regime: per-edge alpha in [4/n, 12/n] (~8/n on
  // average), continuous rate spread so every edge has distinct rates.
  // kAuto with the analytic rate bounds: dense (identical to the 3-arg
  // ctor) through n = 4096, the on-set-only sparse engine above — at
  // n = 32768 the dense engine would need ~14 GB of rates and buckets.
  const auto n = static_cast<std::size_t>(state.range(0));
  const double a = 8.0 / static_cast<double>(n);
  HeterogeneousEdgeMEG meg(n, uniform_alpha_rates(0.2, 0.5, 0.5 * a, 1.5 * a),
                           1, MegStorage::kAuto,
                           uniform_alpha_bounds(0.2, 0.5, 0.5 * a, 1.5 * a));
  for (auto _ : state) {
    meg.step();
    benchmark::DoNotOptimize(meg.snapshot().num_edges());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(meg_storage_name(meg.storage()));
}
BENCHMARK(BM_HeterogeneousEdgeMegStepSparse)->Arg(1024)->Arg(4096)
    ->Arg(16384)->Arg(32768)->Unit(benchmark::kMicrosecond);

void BM_FloodSparseGeneralEdgeMeg(benchmark::State& state) {
  // End-to-end flooding on the sparse minority-state engine at sizes the
  // dense per-pair representation cannot allocate: each iteration resets
  // to a fresh stationary start and floods from node 0 to completion
  // (expected O(log n / log(1 + n alpha)) rounds at alpha ~ 8/n).
  const auto n = static_cast<std::size_t>(state.range(0));
  auto link = make_bursty_link(4.0 / static_cast<double>(n), 0.5, 0.5);
  GeneralEdgeMEG meg(n, link.chain, link.chi, 1, MegStorage::kSparse);
  std::uint64_t seed = 1;
  std::uint64_t total_rounds = 0;
  for (auto _ : state) {
    meg.reset(seed++);
    const FloodResult r = flood(meg, 0, 4096);
    total_rounds += r.rounds;
    benchmark::DoNotOptimize(r.rounds);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["rounds"] = benchmark::Counter(
      static_cast<double>(total_rounds) /
      static_cast<double>(state.iterations()));
}
BENCHMARK(BM_FloodSparseGeneralEdgeMeg)->Arg(16384)->Arg(32768)
    ->Unit(benchmark::kMillisecond);

void BM_NodeMegStep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ExplicitNodeMEG meg(n, lazy_random_walk_chain(cycle_graph(12)),
                      cycle_proximity_connection(12, 1), 1);
  for (auto _ : state) {
    meg.step();
    benchmark::DoNotOptimize(meg.snapshot().num_edges());
  }
}
BENCHMARK(BM_NodeMegStep)->Arg(64)->Arg(256);

void BM_RandomWalkStep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = std::make_shared<const Graph>(grid_2d(16));
  RandomWalkModel model(g, n, {}, 1);
  for (auto _ : state) {
    model.step();
    benchmark::DoNotOptimize(model.snapshot().num_edges());
  }
}
BENCHMARK(BM_RandomWalkStep)->Arg(128)->Arg(512);

void BM_WaypointStep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  WaypointParams p;
  p.side_length = 16.0;
  p.v_min = 0.5;
  p.v_max = 1.0;
  p.radius = 1.0;
  p.resolution = 64;
  RandomWaypointModel model(n, p, 1);
  for (auto _ : state) {
    model.step();
    benchmark::DoNotOptimize(model.snapshot().num_edges());
  }
}
BENCHMARK(BM_WaypointStep)->Arg(128)->Arg(512);

void BM_WaypointStepLarge(benchmark::State& state) {
  // Paper scale: n = 4096 agents at slow (v << bucket width) speeds, the
  // regime where the incremental NeighborIndex path dominates.
  const auto n = static_cast<std::size_t>(state.range(0));
  WaypointParams p;
  p.side_length = 64.0;
  p.v_min = 0.05;
  p.v_max = 0.1;
  p.radius = 1.0;
  p.resolution = 256;
  RandomWaypointModel model(n, p, 1);
  for (auto _ : state) {
    model.step();
    benchmark::DoNotOptimize(model.snapshot().num_edges());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WaypointStepLarge)->Arg(4096)->Unit(benchmark::kMicrosecond);

void BM_NeighborRebuild(benchmark::State& state) {
  // Full counting-pass rebuild of the bucketed neighbor index (the
  // fallback path of refresh(); also the init/collapse/reset path).
  const auto n = static_cast<std::size_t>(state.range(0));
  const SquareGrid grid(128, 32.0);
  NeighborIndex index(grid, 1.0);
  Rng rng(1);
  std::vector<CellId> cells(n);
  for (auto& cell : cells) {
    cell = static_cast<CellId>(rng.uniform_int(grid.num_points()));
  }
  for (auto _ : state) {
    index.rebuild(cells);
    benchmark::DoNotOptimize(index.num_nodes());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_NeighborRebuild)->Arg(512)->Arg(4096);

void BM_GridLPathsStep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  GridLPathsModel model(16, n, 1, 1);
  for (auto _ : state) {
    model.step();
    benchmark::DoNotOptimize(model.snapshot().num_edges());
  }
}
BENCHMARK(BM_GridLPathsStep)->Arg(128)->Arg(512);

void BM_FloodRound(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  TwoStateEdgeMEG meg(n, {4.0 / static_cast<double>(n), 0.3}, 1);
  std::vector<char> informed(n, 0);
  for (std::size_t i = 0; i < n / 2; ++i) informed[i] = 1;
  std::vector<NodeId> scratch;
  for (auto _ : state) {
    auto copy = informed;
    benchmark::DoNotOptimize(flood_round(meg.snapshot(), copy, scratch));
  }
}
BENCHMARK(BM_FloodRound)->Arg(256)->Arg(1024);

void BM_FloodAllSources(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  TwoStateEdgeMEG meg(n, {2.0 / static_cast<double>(n), 0.3}, 1);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    meg.reset(seed++);
    const AllSourcesResult all = flood_all_sources(meg, 4096);
    benchmark::DoNotOptimize(all.max_rounds);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FloodAllSources)->Arg(128)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);

void BM_FloodAllSourcesThreaded(benchmark::State& state) {
  // Word-column-partitioned all-sources kernel; results are bit-identical
  // to BM_FloodAllSources at any thread count, so this measures pure
  // scaling of the round kernel (bounded by the host's core count).
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  TwoStateEdgeMEG meg(n, {2.0 / static_cast<double>(n), 0.3}, 1);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    meg.reset(seed++);
    const AllSourcesResult all = flood_all_sources(meg, 4096, threads);
    benchmark::DoNotOptimize(all.max_rounds);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FloodAllSourcesThreaded)
    ->Args({512, 1})
    ->Args({512, 2})
    ->Args({512, 4})
    ->Args({1024, 4})
    ->Unit(benchmark::kMillisecond);

void BM_FullFloodSparseEdgeMeg(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  TwoStateEdgeMEG meg(n, {1.0 / static_cast<double>(n), 0.3}, 1);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    meg.reset(seed++);
    const FloodResult r = flood(meg, 0, 1'000'000);
    benchmark::DoNotOptimize(r.rounds);
  }
}
BENCHMARK(BM_FullFloodSparseEdgeMeg)->Arg(128)->Arg(512)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace megflood

BENCHMARK_MAIN();
