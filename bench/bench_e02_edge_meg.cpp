// Experiment E2 — Appendix A: two-state edge-MEG bound vs. the known
// almost-tight bound of [10] (Eq. 2), across the q/(n p) crossover.
//
// Paper claim: our bound O((1/(p+q)) ((p+q)/(np) + 1)^2 log^2 n) is almost
// tight (within polylog of Eq. 2's O(log n / log(1+np))) whenever q >= np,
// and degrades below that crossover.  We sweep q at fixed n, p and print
// measured flooding, both bound formulas, and their ratio.

#include <cmath>
#include <iostream>
#include <memory>

#include "analysis/bounds.hpp"
#include "bench_util.hpp"
#include "core/trial.hpp"
#include "meg/edge_meg.hpp"
#include "util/table.hpp"

int main() {
  using namespace megflood;
  bench::print_header(
      "E2 / Appendix A (edge-MEG tightness crossover)",
      "Claim: the Theorem-1 derived bound for two-state edge-MEGs is within\n"
      "polylog(n) of the almost-tight Eq. 2 bound of [10] iff q >= n*p.");

  const std::size_t n = 256;
  const double p = 1.0 / (static_cast<double>(n) * 8.0);  // np = 0.125
  const double np = static_cast<double>(n) * p;
  const double polylog =
      std::pow(std::log(static_cast<double>(n)), 3.0);

  Table table({"q/(np)", "q", "flood p50", "flood p90", "ours(raw)",
               "eq2(raw)", "ours/eq2", "within polylog"});
  // q = ratio * np must stay a probability: with np = 0.125 the ratio can
  // sweep up to 8 (q = 1, instant link death).
  for (double ratio : {0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    const double q = ratio * np;
    TrialConfig cfg;
    cfg.trials = 24;
    cfg.seed = 7000 + static_cast<std::uint64_t>(ratio * 1000);
    cfg.max_rounds = 4'000'000;
    cfg.threads = 0;  // trial runner: one worker per hardware thread
    const auto m = measure_flooding(
        [&](std::uint64_t seed) {
          return std::make_unique<TwoStateEdgeMEG>(n, TwoStateParams{p, q},
                                                   seed);
        },
        cfg);
    const double ours = edge_meg_bound(n, p, q);
    const double eq2 = edge_meg_tight_bound(n, p);
    const bool tight = ours <= polylog * eq2;
    table.add_row({Table::num(ratio, 3), Table::num(q, 5),
                   bench::fmt_rounds(m, m.rounds.median),
                   bench::fmt_rounds(m, m.rounds.p90),
                   Table::num(ours, 1), Table::num(eq2, 1),
                   Table::num(ours / eq2, 2), bench::verdict(tight)});
    bench::warn_incomplete(m, "q/(np)=" + std::to_string(ratio));
  }
  table.print(std::cout);
  std::cout << "\npolylog(n) threshold used: log^3 n = "
            << Table::num(polylog, 1)
            << "\nExpected shape: the ours/eq2 ratio stays within polylog "
               "across this regime\n(q can reach np here), and is best near "
               "the q ~ np crossover.\n";

  // Regime B: np >> 1, so q <= 1 < np for every q — the paper's bound is
  // NOT almost-tight here (it pays 1/(p+q) where Eq. 2 pays only
  // log n / log(1+np)); the ratio must exceed polylog for small q.
  const double p2 = 16.0 / static_cast<double>(n);  // np = 16
  std::cout << "\n-- regime B: np = 16 (q < np always; paper predicts the "
               "bound is loose here) --\n";
  Table table2({"q", "flood p50", "ours(raw)", "eq2(raw)", "ours/eq2",
                "within polylog"});
  for (double q : {0.001, 0.01, 0.1, 1.0}) {
    TrialConfig cfg;
    cfg.trials = 16;
    cfg.seed = 8800 + static_cast<std::uint64_t>(q * 10000);
    cfg.max_rounds = 100000;
    cfg.threads = 0;  // trial runner: one worker per hardware thread
    const auto m = measure_flooding(
        [&](std::uint64_t seed) {
          return std::make_unique<TwoStateEdgeMEG>(n, TwoStateParams{p2, q},
                                                   seed);
        },
        cfg);
    const double ours = edge_meg_bound(n, p2, q);
    const double eq2 = edge_meg_tight_bound(n, p2);
    table2.add_row({Table::num(q, 4), bench::fmt_rounds(m, m.rounds.median),
                    Table::num(ours, 1), Table::num(eq2, 1),
                    Table::num(ours / eq2, 1),
                    bench::verdict(ours <= polylog * eq2)});
  }
  table2.print(std::cout);
  std::cout << "Expected shape: 'within polylog' is NO at small q and "
               "recovers only as q -> 1\n(still below np = 16, so the gap "
               "persists, exactly as the paper admits).\n";
  return 0;
}
