// Ablation A1 — does the trajectory shape matter?
//
// The paper's pitch (vs. the ad-hoc Manhattan analysis of [13]) is that
// its general method is insensitive to the specific trajectories: only
// the positional stationary distribution (delta, lambda) and the mixing
// time enter the bound.  We compare two mobility models with matched
// scale — straight-line random waypoint vs. L-shaped (Manhattan) paths on
// the grid — at L = sqrt(n), unit radius, unit-ish speed, and check both
// exhibit the same O(sqrt(n) polylog) flooding scaling.

#include <cmath>
#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "core/trial.hpp"
#include "mobility/random_paths.hpp"
#include "mobility/random_waypoint.hpp"
#include "util/table.hpp"

int main() {
  using namespace megflood;
  bench::print_header(
      "A1 / Trajectory-shape ablation (straight lines vs Manhattan paths)",
      "Claim behind the paper's generality: flooding depends on the\n"
      "positional distribution and mixing time, not the trajectory shape;\n"
      "straight-line RWP and Manhattan L-paths should scale alike.");

  Table table({"n", "L=s", "RWP p50", "RWP p90", "Manhattan p50",
               "Manhattan p90", "ratio p50"});
  std::vector<double> ns, rwp_times, man_times;
  for (std::size_t n : {32, 72, 128, 200}) {
    const auto side = static_cast<std::size_t>(
        std::llround(std::sqrt(static_cast<double>(n) / 2.0)) * 2);
    // Straight-line RWP on the side x side square, r = 1, v ~ 1.
    WaypointParams wp;
    wp.side_length = static_cast<double>(side - 1);
    wp.v_min = 0.75;
    wp.v_max = 1.25;
    wp.radius = 1.0;
    wp.resolution = std::max<std::size_t>(32, 2 * side);
    RandomWaypointModel warm(n, wp, 0);
    TrialConfig cfg;
    cfg.trials = 16;
    cfg.seed = 100 + n;
    cfg.max_rounds = 2'000'000;
    cfg.threads = 0;  // trial runner: one worker per hardware thread
    cfg.warmup_steps = warm.suggested_warmup();
    const auto rwp = measure_flooding(
        [&](std::uint64_t seed) {
          return std::make_unique<RandomWaypointModel>(n, wp, seed);
        },
        cfg);

    // Manhattan: L-paths on the side x side grid, 1 point per unit, one
    // hop per round (speed 1), transmission radius 1 hop.
    TrialConfig cfg2 = cfg;
    cfg2.warmup_steps = 0;  // exact stationary initialization
    const auto manhattan = measure_flooding(
        [&](std::uint64_t seed) {
          return std::make_unique<GridLPathsModel>(side, n, 1, seed);
        },
        cfg2);

    table.add_row(
        {Table::integer(static_cast<long long>(n)),
         Table::integer(static_cast<long long>(side)),
         Table::num(rwp.rounds.median, 1), Table::num(rwp.rounds.p90, 1),
         Table::num(manhattan.rounds.median, 1),
         Table::num(manhattan.rounds.p90, 1),
         Table::num(rwp.rounds.median /
                        std::max(1.0, manhattan.rounds.median),
                    2)});
    ns.push_back(static_cast<double>(n));
    rwp_times.push_back(rwp.rounds.p90);
    man_times.push_back(manhattan.rounds.p90);
  }
  table.print(std::cout);
  bench::print_slope("RWP flooding vs n (expect ~0.5)", ns, rwp_times);
  bench::print_slope("Manhattan flooding vs n (expect ~0.5)", ns, man_times);
  std::cout << "Expected shape: both models scale ~sqrt(n) and stay within\n"
               "a constant factor of each other — the trajectory shape\n"
               "washes out, as the paper's general method predicts.\n";
  return 0;
}
