// Experiment E3 — Appendix A: *generalized* edge-MEGs (arbitrary hidden
// chain + chi map).  Edges are independent, so beta = 1 and Theorem 1
// gives O(T_mix (1/(n*alpha) + 1)^2 log^2 n) with alpha = pi(chi = 1) and
// T_mix the hidden chain's exact mixing time.  Two hidden chains are
// exercised: a 3-state bursty link and an 8-state duty-cycled link.

#include <iostream>
#include <memory>

#include "analysis/bounds.hpp"
#include "bench_util.hpp"
#include "core/trial.hpp"
#include "markov/mixing.hpp"
#include "meg/general_edge_meg.hpp"
#include "util/table.hpp"

namespace megflood {
namespace {

void run_chain(const std::string& name, const BurstyLink& link) {
  GeneralEdgeMEG probe(8, link.chain, link.chi, 1);
  const double alpha = probe.stationary_edge_probability();
  const auto t_mix = static_cast<double>(mixing_time(link.chain));
  std::cout << "\n-- hidden chain: " << name << " (|S| = "
            << link.chain.num_states() << ", alpha = " << Table::num(alpha, 4)
            << ", T_mix = " << t_mix << ") --\n";

  Table table({"n", "flood p50", "flood p90", "bound(raw)",
               "bound(calibrated)", "dominated"});
  bench::BoundCalibrator cal;
  for (std::size_t n : {48, 96, 192, 384}) {
    TrialConfig cfg;
    cfg.trials = 16;
    cfg.seed = 300 + n;
    cfg.max_rounds = 1'000'000;
    cfg.threads = 0;  // trial runner: one worker per hardware thread
    const auto m = measure_flooding(
        [&](std::uint64_t seed) {
          return std::make_unique<GeneralEdgeMEG>(n, link.chain, link.chi,
                                                  seed);
        },
        cfg);
    const double raw = general_edge_meg_bound(t_mix, n, alpha);
    // A measurement with zero completed trials must not calibrate the
    // constant or count as dominated.
    const bool usable = !m.all_incomplete();
    const double calibrated = usable ? cal.record(m.rounds.p90, raw) : 0.0;
    table.add_row({Table::integer(static_cast<long long>(n)),
                   bench::fmt_rounds(m, m.rounds.median),
                   bench::fmt_rounds(m, m.rounds.p90),
                   Table::num(raw, 1),
                   usable ? Table::num(calibrated, 1) : "n/a",
                   usable ? bench::verdict(m.rounds.p90 <= 3.0 * calibrated)
                          : "n/a"});
    bench::warn_incomplete(m, "n=" + std::to_string(n));
  }
  table.print(std::cout);
  bench::print_footer(cal, "flooding p90");
}

}  // namespace
}  // namespace megflood

int main() {
  using namespace megflood;
  bench::print_header(
      "E3 / Appendix A (generalized edge-MEG)",
      "Claim: for edge-MEGs driven by an arbitrary hidden chain M and\n"
      "existence map chi, beta = 1 and flooding is\n"
      "O(T_mix (1/(n*alpha) + 1)^2 log^2 n), alpha = pi_M(chi = 1).");
  run_chain("bursty (off->warming->on)", make_bursty_link(0.05, 0.3, 0.4));
  run_chain("duty-cycle (8 states, 2 on)", make_duty_cycle_link(8, 2, 0.7));
  return 0;
}
