// Experiment E5 — Section 4.1: the random waypoint flooding bound (the
// paper's headline application: first known flooding bound for RWP).
//
// Paper setting: square of side L ~ sqrt(n), transmission radius r =
// Theta(1), speed v = Theta(1) with r = O(v_max).  The stationary network
// is sparse and highly disconnected, and the claim is
//   flooding = O((L / v_max) (L^2/(n r^2) + 1)^2 log^3 n)
//            = O(sqrt(n)/v_max * log^3 n)  in this regime,
// nearly matching the trivial lower bound Omega(sqrt(n)/v_max).
//
// Sweep 1: n (with L = sqrt(n)) — fitted exponent of flooding vs n should
// be ~0.5 up to log factors.  Sweep 2: v at fixed n — flooding ~ 1/v.
// Sweep 3: grid resolution m — flooding insensitive (footnote 3).

#include <cmath>
#include <iostream>
#include <memory>

#include "analysis/bounds.hpp"
#include "bench_util.hpp"
#include "core/trial.hpp"
#include "mobility/random_waypoint.hpp"
#include "util/table.hpp"

namespace megflood {
namespace {

WaypointParams sparse_params(std::size_t n) {
  WaypointParams p;
  p.side_length = std::sqrt(static_cast<double>(n));
  p.v_min = 0.75;
  p.v_max = 1.5;
  p.radius = 1.0;
  p.resolution = std::max<std::size_t>(
      32, static_cast<std::size_t>(2.0 * p.side_length));
  return p;
}

FloodingMeasurement measure(std::size_t n, const WaypointParams& p,
                            std::size_t trials, std::uint64_t seed) {
  RandomWaypointModel warm(n, p, 0);
  TrialConfig cfg;
  cfg.trials = trials;
  cfg.seed = seed;
  cfg.max_rounds = 2'000'000;
  cfg.threads = 0;  // trial runner: one worker per hardware thread
  cfg.warmup_steps = warm.suggested_warmup();
  return measure_flooding(
      [&](std::uint64_t s) {
        return std::make_unique<RandomWaypointModel>(n, p, s);
      },
      cfg);
}

void sweep_n() {
  std::cout << "\n-- sweep n with L = sqrt(n), r = 1, v in [0.75, 1.5] --\n";
  Table table({"n", "L", "flood p50", "flood p90", "lower Omega(L/v)",
               "bound(raw)", "bound(calibrated)", "dominated"});
  bench::BoundCalibrator cal;
  std::vector<double> ns, measured;
  for (std::size_t n : {32, 64, 128, 256, 512}) {
    const WaypointParams p = sparse_params(n);
    const auto m = measure(n, p, 16, 500 + n);
    const double raw = waypoint_bound(p.side_length, p.v_max, n, p.radius);
    const double lower = waypoint_lower_bound(p.side_length, p.v_max);
    const double calibrated = cal.record(m.rounds.p90, raw);
    table.add_row({Table::integer(static_cast<long long>(n)),
                   Table::num(p.side_length, 2), Table::num(m.rounds.median, 1),
                   Table::num(m.rounds.p90, 1), Table::num(lower, 1),
                   Table::num(raw, 1), Table::num(calibrated, 1),
                   bench::verdict(m.rounds.p90 <= 3.0 * calibrated)});
    ns.push_back(static_cast<double>(n));
    measured.push_back(m.rounds.p90);
    if (m.incomplete > 0) {
      std::cout << "WARNING: " << m.incomplete << " incomplete at n=" << n
                << "\n";
    }
  }
  table.print(std::cout);
  bench::print_footer(cal, "flooding p90");
  bench::print_slope("flooding vs n (expect ~0.5 + log factors)", ns,
                     measured);
}

void sweep_speed() {
  const std::size_t n = 128;
  std::cout << "\n-- sweep v_max at n = " << n
            << " (expect flooding ~ 1/v) --\n";
  Table table({"v_max", "flood p50", "flood p90"});
  std::vector<double> vs, measured;
  for (double v : {0.5, 1.0, 2.0, 4.0}) {
    WaypointParams p = sparse_params(n);
    p.v_min = 0.5 * v;
    p.v_max = v;
    const auto m = measure(n, p, 16, 900 + static_cast<std::uint64_t>(v * 8));
    table.add_row({Table::num(v, 2), Table::num(m.rounds.median, 1),
                   Table::num(m.rounds.p90, 1)});
    vs.push_back(v);
    measured.push_back(m.rounds.p90);
  }
  table.print(std::cout);
  bench::print_slope("flooding vs v_max (expect ~-1)", vs, measured);
}

void sweep_resolution() {
  const std::size_t n = 96;
  std::cout << "\n-- sweep grid resolution m at n = " << n
            << " (footnote 3: bound insensitive to m) --\n";
  Table table({"m", "flood p50", "flood p90"});
  for (std::size_t m_res : {16, 32, 64, 128}) {
    WaypointParams p = sparse_params(n);
    p.resolution = m_res;
    const auto m = measure(n, p, 12, 1200 + m_res);
    table.add_row({Table::integer(static_cast<long long>(m_res)),
                   Table::num(m.rounds.median, 1),
                   Table::num(m.rounds.p90, 1)});
  }
  table.print(std::cout);
  std::cout << "Expected shape: rows agree within trial noise once m is\n"
               "fine enough relative to r and v.\n";
}

}  // namespace
}  // namespace megflood

int main() {
  using namespace megflood;
  bench::print_header(
      "E5 / Random waypoint flooding (Section 4.1)",
      "Claim: flooding on the random waypoint over an L x L square is\n"
      "O((L/v_max)(L^2/(n r^2) + 1)^2 log^3 n); with L ~ sqrt(n), r, v =\n"
      "Theta(1) this is O(sqrt(n)/v_max log^3 n), near the trivial\n"
      "Omega(sqrt(n)/v_max) lower bound.");
  sweep_n();
  sweep_speed();
  sweep_resolution();
  return 0;
}
