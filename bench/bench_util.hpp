#pragma once

// Shared helpers for the experiment harnesses (bench_e01 .. bench_e11).
// Each harness prints paper-style tables through util/table.hpp; this
// header adds the calibrated-bound machinery: the paper states O(.) bounds,
// so each experiment family calibrates one multiplicative constant at its
// smallest instance and then reports whether the calibrated bound dominates
// every larger instance (the honest numeric reading of an asymptotic
// upper-bound claim).

#include <iostream>
#include <string>
#include <vector>

#include "analysis/calibration.hpp"
#include "core/trial.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace megflood::bench {

using megflood::BoundCalibrator;

inline std::string verdict(bool ok) { return ok ? "yes" : "NO"; }

// Formats a rounds statistic for a table cell.  When no trial completed,
// every Summary field reads 0 and must not be printed as a real flooding
// time — the cell says so instead.
inline std::string fmt_rounds(const FloodingMeasurement& m, double value,
                              int precision = 1) {
  return m.all_incomplete() ? "n/a (0 done)" : Table::num(value, precision);
}

// One-line completion warning shared by the harnesses; distinguishes the
// partial case from the fully incomplete one.
inline void warn_incomplete(const FloodingMeasurement& m,
                            const std::string& where) {
  if (m.all_incomplete()) {
    std::cout << "WARNING: no completed trials at " << where
              << " — round statistics are not meaningful\n";
  } else if (m.incomplete > 0) {
    std::cout << "WARNING: " << m.incomplete << " incomplete trials at "
              << where << "\n";
  }
}

inline void print_header(const std::string& id, const std::string& claim) {
  std::cout << "\n=== " << id << " ===\n" << claim << "\n\n";
}

inline void print_footer(const BoundCalibrator& cal,
                         const std::string& what) {
  std::cout << "\ncalibrated constant c = " << Table::num(cal.constant())
            << "; " << what << " dominated by c*bound (3x slack): "
            << verdict(cal.all_dominated()) << "\n";
}

// Fits measured-vs-x scaling in log-log space and prints the exponent.
inline void print_slope(const std::string& label, const std::vector<double>& x,
                        const std::vector<double>& y) {
  if (x.size() >= 2) {
    const LinearFit fit = loglog_fit(x, y);
    std::cout << label << ": fitted exponent " << Table::num(fit.slope)
              << " (R^2 = " << Table::num(fit.r_squared) << ")\n";
  }
}

}  // namespace megflood::bench
