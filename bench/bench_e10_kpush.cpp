// Experiment E10 — the randomized protocol of Section 5 (Conclusions).
//
// Paper remark: a protocol where each informed node transmits to a random
// subset of its neighbors reduces to flooding on a "virtual" dynamic
// graph with a subset of edges removed.  We compare, on the same models:
//   (i)  plain flooding,
//   (ii) the direct k-push protocol,
//   (iii) flooding on the RandomSubsetOverlay (the paper's reduction),
// sweeping the fan-out k.  Expectations: (ii) and (iii) behave alike,
// converge to (i) as k grows, and stay within the flooding-bound regime
// (a constant-factor slowdown for constant k on sparse models).
//
// All three run through the generic measure() harness: the direct
// protocol is KPushProcess, the reduction is plain FloodingProcess on an
// overlay-wrapped graph factory.  One root seed, derive_seeds per trial,
// no hand-rolled loops.

#include <algorithm>
#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "core/process.hpp"
#include "core/trial.hpp"
#include "meg/edge_meg.hpp"
#include "mobility/random_waypoint.hpp"
#include "protocols/k_push.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace megflood {
namespace {

void run_model(const std::string& name, std::size_t n,
               const GraphFactory& factory, std::uint64_t warmup) {
  std::cout << "\n-- model: " << name << " (n = " << n << ") --\n";
  TrialConfig cfg;
  cfg.trials = 12;
  cfg.seed = 7;
  cfg.max_rounds = 2'000'000;
  cfg.rotate_sources = false;
  cfg.warmup_steps = warmup;
  cfg.threads = 0;

  const Measurement flooding_baseline = measure_flooding(factory, cfg);
  bench::warn_incomplete(flooding_baseline, "flooding on " + name);
  const double baseline_median = std::max(1.0, flooding_baseline.rounds.median);

  Table table({"protocol", "k", "rounds p50", "rounds p90",
               "slowdown vs flooding"});
  table.add_row({"flooding", "-",
                 bench::fmt_rounds(flooding_baseline,
                                   flooding_baseline.rounds.median),
                 bench::fmt_rounds(flooding_baseline,
                                   flooding_baseline.rounds.p90),
                 "1.00"});

  for (std::size_t k : {1, 2, 4, 8}) {
    const Measurement push = measure(
        factory, [k] { return std::make_unique<KPushProcess>(k); }, cfg);
    bench::warn_incomplete(push, "k-push k=" + std::to_string(k));
    // The reduction: flooding on the virtual graph that keeps at most k
    // selected incident edges per node.  The overlay owns its inner model
    // and derives its selection seed from the trial seed, so the whole
    // trial is still a pure function of one derive_seeds entry.
    const GraphFactory overlay_factory =
        [&factory, k](std::uint64_t seed) -> std::unique_ptr<DynamicGraph> {
      return std::make_unique<RandomSubsetOverlay>(factory(seed), k,
                                                   seed ^ 0x517cc1b727220a95ULL);
    };
    const Measurement over = measure_flooding(overlay_factory, cfg);
    bench::warn_incomplete(over, "overlay-flood k=" + std::to_string(k));
    table.add_row({"k-push", Table::integer(static_cast<long long>(k)),
                   bench::fmt_rounds(push, push.rounds.median),
                   bench::fmt_rounds(push, push.rounds.p90),
                   push.all_incomplete()
                       ? "-"
                       : Table::num(push.rounds.median / baseline_median, 2)});
    table.add_row({"overlay-flood", Table::integer(static_cast<long long>(k)),
                   bench::fmt_rounds(over, over.rounds.median),
                   bench::fmt_rounds(over, over.rounds.p90),
                   over.all_incomplete()
                       ? "-"
                       : Table::num(over.rounds.median / baseline_median, 2)});
  }
  table.print(std::cout);
  std::cout << "Expected shape: k-push and overlay-flood track each other\n"
               "and approach plain flooding as k grows; on sparse models\n"
               "even k = 1 is within a small constant factor (snapshot\n"
               "degrees are mostly <= 1 there).\n";
}

}  // namespace
}  // namespace megflood

int main() {
  using namespace megflood;
  bench::print_header(
      "E10 / Randomized subset-push protocol (Section 5)",
      "Claim: the random-subset transmission protocol reduces to flooding\n"
      "on a virtual dynamic graph with some edges removed.");

  const std::size_t n = 128;
  run_model(
      "sparse two-state edge-MEG", n,
      [&](std::uint64_t seed) -> std::unique_ptr<DynamicGraph> {
        return std::make_unique<TwoStateEdgeMEG>(
            n, TwoStateParams{1.0 / static_cast<double>(n * 2), 0.3}, seed);
      },
      0);

  WaypointParams wp;
  wp.side_length = 8.0;
  wp.v_min = 0.5;
  wp.v_max = 1.0;
  wp.radius = 1.0;
  wp.resolution = 32;
  const std::size_t wn = 64;
  RandomWaypointModel warm(wn, wp, 0);
  run_model(
      "random waypoint", wn,
      [&](std::uint64_t seed) -> std::unique_ptr<DynamicGraph> {
        return std::make_unique<RandomWaypointModel>(wn, wp, seed);
      },
      warm.suggested_warmup());
  return 0;
}
