// Experiment E10 — the randomized protocol of Section 5 (Conclusions).
//
// Paper remark: a protocol where each informed node transmits to a random
// subset of its neighbors reduces to flooding on a "virtual" dynamic
// graph with a subset of edges removed.  We compare, on the same models:
//   (i)  plain flooding,
//   (ii) the direct k-push protocol,
//   (iii) flooding on the RandomSubsetOverlay (the paper's reduction),
// sweeping the fan-out k.  Expectations: (ii) and (iii) behave alike,
// converge to (i) as k grows, and stay within the flooding-bound regime
// (a constant-factor slowdown for constant k on sparse models).

#include <algorithm>
#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "core/trial.hpp"
#include "meg/edge_meg.hpp"
#include "mobility/random_waypoint.hpp"
#include "protocols/k_push.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace megflood {
namespace {

template <typename Factory>
void run_model(const std::string& name, std::size_t n, Factory&& factory,
               std::uint64_t warmup) {
  std::cout << "\n-- model: " << name << " (n = " << n << ") --\n";
  constexpr std::size_t kTrials = 12;

  auto flooding_baseline = [&] {
    std::vector<double> rounds;
    for (std::uint64_t trial = 0; trial < kTrials; ++trial) {
      auto model = factory(trial * 101 + 7);
      for (std::uint64_t w = 0; w < warmup; ++w) model->step();
      const FloodResult r = flood(*model, 0, 2'000'000);
      if (r.completed) rounds.push_back(static_cast<double>(r.rounds));
    }
    return summarize(std::move(rounds));
  }();

  Table table({"protocol", "k", "rounds p50", "rounds p90",
               "slowdown vs flooding"});
  table.add_row({"flooding", "-", Table::num(flooding_baseline.median, 1),
                 Table::num(flooding_baseline.p90, 1), "1.00"});

  for (std::size_t k : {1, 2, 4, 8}) {
    std::vector<double> push_rounds, overlay_rounds;
    for (std::uint64_t trial = 0; trial < kTrials; ++trial) {
      {
        auto model = factory(trial * 101 + 7);
        for (std::uint64_t w = 0; w < warmup; ++w) model->step();
        const FloodResult r =
            k_push_flood(*model, 0, k, 2'000'000, trial * 31 + 5);
        if (r.completed) push_rounds.push_back(static_cast<double>(r.rounds));
      }
      {
        auto model = factory(trial * 101 + 7);
        for (std::uint64_t w = 0; w < warmup; ++w) model->step();
        RandomSubsetOverlay overlay(*model, k, trial * 97 + 3);
        const FloodResult r = flood(overlay, 0, 2'000'000);
        if (r.completed) {
          overlay_rounds.push_back(static_cast<double>(r.rounds));
        }
      }
    }
    const Summary push = summarize(std::move(push_rounds));
    const Summary over = summarize(std::move(overlay_rounds));
    table.add_row({"k-push", Table::integer(static_cast<long long>(k)),
                   Table::num(push.median, 1), Table::num(push.p90, 1),
                   Table::num(push.median /
                                  std::max(1.0, flooding_baseline.median),
                              2)});
    table.add_row({"overlay-flood", Table::integer(static_cast<long long>(k)),
                   Table::num(over.median, 1), Table::num(over.p90, 1),
                   Table::num(over.median /
                                  std::max(1.0, flooding_baseline.median),
                              2)});
  }
  table.print(std::cout);
  std::cout << "Expected shape: k-push and overlay-flood track each other\n"
               "and approach plain flooding as k grows; on sparse models\n"
               "even k = 1 is within a small constant factor (snapshot\n"
               "degrees are mostly <= 1 there).\n";
}

}  // namespace
}  // namespace megflood

int main() {
  using namespace megflood;
  bench::print_header(
      "E10 / Randomized subset-push protocol (Section 5)",
      "Claim: the random-subset transmission protocol reduces to flooding\n"
      "on a virtual dynamic graph with some edges removed.");

  const std::size_t n = 128;
  run_model(
      "sparse two-state edge-MEG", n,
      [&](std::uint64_t seed) {
        return std::make_unique<TwoStateEdgeMEG>(
            n, TwoStateParams{1.0 / static_cast<double>(n * 2), 0.3}, seed);
      },
      0);

  WaypointParams wp;
  wp.side_length = 8.0;
  wp.v_min = 0.5;
  wp.v_max = 1.0;
  wp.radius = 1.0;
  wp.resolution = 32;
  const std::size_t wn = 64;
  RandomWaypointModel warm(wn, wp, 0);
  run_model(
      "random waypoint", wn,
      [&](std::uint64_t seed) {
        return std::make_unique<RandomWaypointModel>(wn, wp, seed);
      },
      warm.suggested_warmup());
  return 0;
}
