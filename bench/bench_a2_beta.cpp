// Ablation A2 — what does the beta-independence condition actually buy?
//
// Theorem 1 charges a (1/(n alpha) + beta)^2 factor.  The clique-flicker
// family fixes the per-pair alpha and the snapshot distribution while
// dialing (i) the edge correlation (beta ~ n/(rho m), enormous) and
// (ii) the membership persistence gamma (subset chain mixing ~ 1/gamma).
// Findings this bench reproduces:
//  * i.i.d. cliques (gamma = 1): flooding stays within a small constant
//    of the matched-alpha independent edge-MEG — the beta^2 charge is
//    sufficient-side slack;
//  * sticky cliques (gamma -> 0): flooding blows up ~ 1/gamma — the
//    conditional epoch structure (M = mixing time) in Theorem 1 is the
//    binding part, and no bound without it could hold.

#include <iostream>
#include <memory>

#include "bench_util.hpp"
#include "core/trial.hpp"
#include "meg/clique_flicker.hpp"
#include "meg/edge_meg.hpp"
#include "util/table.hpp"

int main() {
  using namespace megflood;
  bench::print_header(
      "A2 / beta-independence ablation (clique flicker)",
      "Same per-pair alpha throughout; only the correlation structure and\n"
      "its persistence change.");

  const std::size_t n = 96;
  const std::size_t m = 6;
  const double rho = 0.5;
  CliqueFlickerGraph probe(n, m, rho, 1);
  const double alpha = probe.edge_probability();
  std::cout << "per-pair alpha = " << Table::num(alpha, 5)
            << ", incident beta = " << Table::num(probe.incident_beta(), 1)
            << " (independent models have beta ~ 1)\n\n";

  TrialConfig cfg;
  cfg.trials = 16;
  cfg.max_rounds = 20'000'000;
  cfg.threads = 0;  // trial runner: one worker per hardware thread

  Table table({"model", "gamma (subset resample)", "flood p50", "flood p90",
               "slowdown vs independent"});
  cfg.seed = 41;
  const auto indep = measure_flooding(
      [&](std::uint64_t seed) {
        return std::make_unique<TwoStateEdgeMEG>(
            n, TwoStateParams{alpha, 1.0 - alpha}, seed);
      },
      cfg);
  table.add_row({"independent edge-MEG", "-", Table::num(indep.rounds.median, 1),
                 Table::num(indep.rounds.p90, 1), "1.00"});

  std::vector<double> gammas, slowdowns;
  for (double gamma : {1.0, 0.25, 0.0625, 0.015625}) {
    cfg.seed = 47 + static_cast<std::uint64_t>(1.0 / gamma);
    const auto run = measure_flooding(
        [&](std::uint64_t seed) {
          return std::make_unique<CliqueFlickerGraph>(n, m, rho, seed, gamma);
        },
        cfg);
    const double slowdown =
        run.rounds.median / std::max(1.0, indep.rounds.median);
    table.add_row({"clique flicker", Table::num(gamma, 4),
                   Table::num(run.rounds.median, 1),
                   Table::num(run.rounds.p90, 1), Table::num(slowdown, 2)});
    gammas.push_back(1.0 / gamma);
    slowdowns.push_back(run.rounds.median);
    if (run.incomplete > 0) {
      std::cout << "WARNING: " << run.incomplete
                << " incomplete at gamma=" << gamma << "\n";
    }
  }
  table.print(std::cout);
  bench::print_slope("clique-flicker flooding vs 1/gamma (expect ~1: the "
                     "epoch length M dominates)",
                     gammas, slowdowns);
  std::cout << "Expected shape: gamma = 1 is within a small factor of the\n"
               "independent model despite beta >> 1; flooding then grows\n"
               "~ linearly in 1/gamma, the subset chain's mixing time.\n";
  return 0;
}
