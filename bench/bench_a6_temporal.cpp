// Ablation A6 — how disconnected can the snapshots be?
//
// The paper stresses that its conditions tolerate "sparse and
// disconnected topologies: in every G_t there could be a large subset of
// all nodes that are isolated", in contrast to worst-case frameworks that
// assume T-interval connectivity ([21]) per window.  This bench
// quantifies the temporal structure of the very models the flooding
// experiments run on: per-snapshot connectivity, the largest
// T-interval-connectivity (expected: 0 — not even single snapshots
// connect), the smallest union-connecting window, and the measured
// flooding time alongside.

#include <iostream>
#include <memory>

#include "analysis/temporal.hpp"
#include "bench_util.hpp"
#include "core/trace.hpp"
#include "core/trial.hpp"
#include "meg/edge_meg.hpp"
#include "mobility/random_waypoint.hpp"
#include "util/table.hpp"

namespace megflood {
namespace {

template <typename Factory>
void analyze(const std::string& name, Factory&& factory,
             std::uint64_t warmup) {
  auto model = factory(7);
  for (std::uint64_t w = 0; w < warmup; ++w) model->step();
  const auto trace = record_trace(*model, 400);
  const SnapshotConnectivity conn = snapshot_connectivity(trace);
  const std::size_t t_interval = t_interval_connectivity(trace);
  const std::size_t window = smallest_connecting_window(trace);

  TrialConfig cfg;
  cfg.trials = 12;
  cfg.max_rounds = 4'000'000;
  cfg.threads = 0;  // trial runner: one worker per hardware thread
  cfg.warmup_steps = warmup;
  const auto m = measure_flooding(factory, cfg);

  Table table({"metric", "value"});
  table.add_row({"snapshots connected (fraction)",
                 Table::num(conn.connected_fraction, 3)});
  table.add_row({"mean isolated-node fraction",
                 Table::num(conn.mean_isolated_fraction, 3)});
  table.add_row({"mean largest-component fraction",
                 Table::num(conn.mean_largest_component_fraction, 3)});
  table.add_row({"T-interval connectivity ([21])",
                 Table::integer(static_cast<long long>(t_interval))});
  table.add_row({"smallest union-connecting window",
                 window == SIZE_MAX ? "never"
                                    : Table::integer(
                                          static_cast<long long>(window))});
  table.add_row({"flooding p50 / p90",
                 Table::num(m.rounds.median, 1) + " / " +
                     Table::num(m.rounds.p90, 1)});
  std::cout << "\n-- " << name << " --\n";
  table.print(std::cout);
}

}  // namespace
}  // namespace megflood

int main() {
  using namespace megflood;
  bench::print_header(
      "A6 / Temporal structure of the flooding-friendly regime",
      "The paper's models flood in polylog-factor-optimal time even when\n"
      "no snapshot is connected and no short window is T-interval\n"
      "connected; this bench quantifies that claim on the real traces.");

  const std::size_t n = 128;
  analyze(
      "sparse two-state edge-MEG (n = 128, n*alpha ~ 1)",
      [&](std::uint64_t seed) {
        return std::make_unique<TwoStateEdgeMEG>(
            n, TwoStateParams{1.0 / static_cast<double>(n * 3), 0.3}, seed);
      },
      0);

  WaypointParams wp;
  wp.side_length = 11.0;
  wp.v_min = 0.5;
  wp.v_max = 1.0;
  wp.radius = 1.0;
  wp.resolution = 44;
  RandomWaypointModel warm(n, wp, 0);
  analyze(
      "random waypoint (n = 128, L ~ sqrt(n), r = 1)",
      [&](std::uint64_t seed) {
        return std::make_unique<RandomWaypointModel>(n, wp, seed);
      },
      warm.suggested_warmup());

  std::cout << "\nExpected shape: connected fraction ~0, many isolated\n"
               "nodes, T-interval connectivity 0, yet flooding completes in\n"
               "tens of rounds — the regime worst-case frameworks like [21]\n"
               "do not cover and the paper's probabilistic analysis does.\n";
  return 0;
}
